/**
 * @file
 * Unit tests for the discrete-event simulation core: event queue
 * ordering and cancellation, virtual clock semantics, deterministic RNG,
 * and the sampling distributions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "sim/distributions.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/simulation.hh"
#include "sim/time.hh"

namespace reqobs::sim {
namespace {

// ------------------------------------------------------------ EventQueue

TEST(EventQueueTest, RunsEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    Tick now = 0;
    while (q.popAndRun(now)) {
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(now, 30);
}

TEST(EventQueueTest, TiesBreakInInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(100, [&order, i] { order.push_back(i); });
    Tick now = 0;
    while (q.popAndRun(now)) {
    }
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, CancelledEventsDoNotRun)
{
    EventQueue q;
    bool ran = false;
    EventId id = q.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(id.pending());
    id.cancel();
    EXPECT_FALSE(id.pending());
    Tick now = 0;
    while (q.popAndRun(now)) {
    }
    EXPECT_FALSE(ran);
}

TEST(EventQueueTest, NextTickSkipsCancelled)
{
    EventQueue q;
    EventId early = q.schedule(5, [] {});
    q.schedule(10, [] {});
    early.cancel();
    EXPECT_EQ(q.nextTick(), 10);
}

TEST(EventQueueTest, EmptyQueueReportsTickMax)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextTick(), kTickMax);
    Tick now = 0;
    EXPECT_FALSE(q.popAndRun(now));
}

TEST(EventQueueTest, EventsCanRescheduleThemselves)
{
    EventQueue q;
    int count = 0;
    std::function<void()> tick = [&] {
        if (++count < 5)
            q.schedule(static_cast<Tick>(count * 10), tick);
    };
    q.schedule(0, tick);
    Tick now = 0;
    while (q.popAndRun(now)) {
    }
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.executedCount(), 5u);
}

TEST(EventQueueDeathTest, SchedulingIntoThePastPanics)
{
    EventQueue q;
    q.schedule(100, [] {});
    Tick now = 0;
    q.popAndRun(now);
    EXPECT_DEATH(q.schedule(50, [] {}), "past");
}

// ------------------------------------------------------------ Simulation

TEST(SimulationTest, ClockFollowsEvents)
{
    Simulation sim;
    Tick seen = -1;
    sim.schedule(milliseconds(5), [&] { seen = sim.now(); });
    sim.run();
    EXPECT_EQ(seen, milliseconds(5));
    EXPECT_EQ(sim.now(), milliseconds(5));
}

TEST(SimulationTest, RunUntilStopsAtDeadline)
{
    Simulation sim;
    int ran = 0;
    sim.schedule(10, [&] { ++ran; });
    sim.schedule(20, [&] { ++ran; });
    sim.schedule(30, [&] { ++ran; });
    sim.runUntil(20);
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(sim.now(), 20);
    sim.run();
    EXPECT_EQ(ran, 3);
}

TEST(SimulationTest, RunUntilAdvancesClockWithoutEvents)
{
    Simulation sim;
    sim.runUntil(seconds(2));
    EXPECT_EQ(sim.now(), seconds(2));
}

TEST(SimulationTest, RunForIsRelative)
{
    Simulation sim;
    sim.runFor(100);
    sim.runFor(100);
    EXPECT_EQ(sim.now(), 200);
}

TEST(SimulationTest, StepExecutesOneEvent)
{
    Simulation sim;
    int ran = 0;
    sim.schedule(1, [&] { ++ran; });
    sim.schedule(2, [&] { ++ran; });
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(ran, 1);
}

// -------------------------------------------------------------------- Rng

TEST(RngTest, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 100000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(RngTest, UniformIntStaysInRange)
{
    Rng rng(9);
    std::vector<int> hits(7, 0);
    for (int i = 0; i < 70000; ++i)
        ++hits[rng.uniformInt(7)];
    for (int h : hits)
        EXPECT_NEAR(h, 10000, 500);
}

TEST(RngTest, NormalHasUnitMoments)
{
    Rng rng(11);
    double sum = 0.0, sumsq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sumsq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(RngTest, ForkedStreamsAreIndependentButDeterministic)
{
    Rng parent1(5), parent2(5);
    Rng child1 = parent1.fork();
    Rng child2 = parent2.fork();
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(child1.next(), child2.next());
    // Child and parent streams differ.
    Rng p(5);
    Rng c = p.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += p.next() == c.next();
    EXPECT_LT(same, 3);
}

// ---------------------------------------------------------- Distributions

struct DistCase
{
    const char *name;
    std::shared_ptr<const Distribution> dist;
    double tolerance; ///< relative tolerance on the sample mean
};

class DistributionMeanTest : public ::testing::TestWithParam<DistCase>
{};

TEST_P(DistributionMeanTest, SampleMeanMatchesAnalyticMean)
{
    const DistCase &c = GetParam();
    Rng rng(1234);
    const int n = 200000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        const Tick s = c.dist->sample(rng);
        ASSERT_GE(s, 0);
        sum += static_cast<double>(s);
    }
    const double mean = sum / n;
    EXPECT_NEAR(mean, c.dist->mean(),
                c.tolerance * std::max(1.0, c.dist->mean()));
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, DistributionMeanTest,
    ::testing::Values(
        DistCase{"fixed", std::make_shared<FixedDist>(12345), 1e-9},
        DistCase{"exp", std::make_shared<ExponentialDist>(microseconds(50)),
                 0.02},
        DistCase{"lognormal",
                 std::make_shared<LogNormalDist>(milliseconds(2), 0.5), 0.02},
        DistCase{"uniform",
                 std::make_shared<UniformDist>(100, 300), 0.02},
        DistCase{"pareto",
                 std::make_shared<BoundedParetoDist>(1000, 1000000, 1.5),
                 0.05},
        DistCase{"mixture",
                 std::make_shared<MixtureDist>(
                     std::make_shared<FixedDist>(100),
                     std::make_shared<FixedDist>(1000), 0.25),
                 0.02}),
    [](const auto &info) { return info.param.name; });

TEST(DistributionTest, BoundedParetoRespectsBounds)
{
    BoundedParetoDist d(500, 5000, 2.0);
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const Tick s = d.sample(rng);
        ASSERT_GE(s, 499); // floor truncation slack
        ASSERT_LE(s, 5000);
    }
}

TEST(DistributionTest, LogNormalSigmaZeroIsDegenerate)
{
    LogNormalDist d(1000, 0.0);
    Rng rng(4);
    for (int i = 0; i < 100; ++i)
        EXPECT_NEAR(static_cast<double>(d.sample(rng)), 1000.0, 1.0);
}

TEST(DistributionTest, DescribeMentionsFamily)
{
    EXPECT_NE(ExponentialDist(1000).describe().find("exp"),
              std::string::npos);
    EXPECT_NE(LogNormalDist(1000, 0.3).describe().find("lognormal"),
              std::string::npos);
}

TEST(DistributionDeathTest, InvalidParametersAreFatal)
{
    EXPECT_DEATH(ExponentialDist(0), "positive");
    EXPECT_DEATH(BoundedParetoDist(100, 50, 2.0), "min");
    EXPECT_DEATH(UniformDist(10, 5), "lo");
}

// ------------------------------------------------------------------- time

TEST(TimeTest, UnitHelpers)
{
    EXPECT_EQ(microseconds(1), 1000);
    EXPECT_EQ(milliseconds(1), 1000000);
    EXPECT_EQ(seconds(1), 1000000000);
    EXPECT_DOUBLE_EQ(toSeconds(seconds(3)), 3.0);
}

TEST(TimeTest, FormatPicksUnits)
{
    EXPECT_EQ(formatTicks(12), "12ns");
    EXPECT_EQ(formatTicks(microseconds(2)), "2.00us");
    EXPECT_EQ(formatTicks(milliseconds(3)), "3.00ms");
    EXPECT_EQ(formatTicks(seconds(4)), "4.000s");
}

} // namespace
} // namespace reqobs::sim
