/**
 * @file
 * io_uring substrate tests: completion/submission semantics, the
 * enter-only-when-empty syscall behaviour, CQ overflow accounting, and
 * the §V-C observability blind spot end to end.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "kernel/io_uring.hh"
#include "kernel/kernel.hh"
#include "sim/simulation.hh"

namespace reqobs::kernel {
namespace {

struct Rig
{
    sim::Simulation sim{3};
    Kernel kernel{sim};
    Pid pid = kernel.createProcess("ring-app");
};

TEST(IoUringTest, CompletionsArriveWithoutRecvSyscalls)
{
    Rig rig;
    auto [fd, sock] = rig.kernel.installSocket(rig.pid, 1);
    IoUring ring(rig.kernel, rig.pid);
    ring.registerRecv(fd);

    std::uint64_t syscalls_before = 0;
    std::vector<std::uint64_t> got;
    rig.kernel.spawnThread(
        rig.pid, [&](Kernel &k, Tid tid) -> Task {
            syscalls_before = k.syscallCount();
            co_await ring.enter(tid); // blocks: one io_uring_enter
            while (ring.hasCqe())
                got.push_back(ring.popCqe().msg.requestId);
        });
    auto *sk = sock.get();
    rig.sim.schedule(sim::milliseconds(1), [&rig, sk] {
        for (std::uint64_t id = 1; id <= 3; ++id) {
            Message m;
            m.requestId = id;
            sk->deliver(std::move(m), rig.sim.now());
        }
    });
    rig.sim.runFor(sim::milliseconds(5));
    EXPECT_EQ(got, (std::vector<std::uint64_t>{1, 2, 3}));
    EXPECT_EQ(ring.completions(), 3u);
    // Exactly one syscall (the blocking enter) for three messages.
    EXPECT_EQ(rig.kernel.syscallCount() - syscalls_before, 1u);
}

TEST(IoUringTest, EnterIsFreeWhenCompletionsPend)
{
    Rig rig;
    auto [fd, sock] = rig.kernel.installSocket(rig.pid, 1);
    IoUring ring(rig.kernel, rig.pid);
    ring.registerRecv(fd);
    sock->deliver(Message{}, 0);
    rig.sim.runFor(sim::milliseconds(1)); // async completion lands

    const std::uint64_t before = rig.kernel.syscallCount();
    bool ran = false;
    rig.kernel.spawnThread(rig.pid, [&](Kernel &, Tid tid) -> Task {
        co_await ring.enter(tid); // CQ non-empty: no syscall at all
        ran = true;
    });
    rig.sim.runFor(sim::milliseconds(1));
    EXPECT_TRUE(ran);
    EXPECT_EQ(rig.kernel.syscallCount(), before);
}

TEST(IoUringTest, SubmitSendTransmitsWithoutSyscall)
{
    Rig rig;
    auto [fd, sock] = rig.kernel.installSocket(rig.pid, 1);
    IoUring ring(rig.kernel, rig.pid);
    std::vector<std::uint64_t> out;
    sock->setTxHandler([&](Message &&m) { out.push_back(m.requestId); });

    const std::uint64_t before = rig.kernel.syscallCount();
    Message m;
    m.requestId = 7;
    ring.submitSend(fd, std::move(m));
    rig.sim.runFor(sim::milliseconds(1));
    EXPECT_EQ(out, (std::vector<std::uint64_t>{7}));
    EXPECT_EQ(ring.submissions(), 1u);
    EXPECT_EQ(rig.kernel.syscallCount(), before);
}

TEST(IoUringTest, CqOverflowDropsAndCounts)
{
    Rig rig;
    auto [fd, sock] = rig.kernel.installSocket(rig.pid, 1);
    IoUringConfig cfg;
    cfg.cqCapacity = 4;
    IoUring ring(rig.kernel, rig.pid, cfg);
    ring.registerRecv(fd);
    for (int i = 0; i < 10; ++i)
        sock->deliver(Message{}, 0);
    rig.sim.runFor(sim::milliseconds(1));
    EXPECT_EQ(ring.cqDepth(), 4u);
    EXPECT_EQ(ring.overflowDrops(), 6u);
}

TEST(IoUringTest, RegistrationErrorsAreFatal)
{
    Rig rig;
    auto [fd, sock] = rig.kernel.installSocket(rig.pid, 1);
    IoUring ring(rig.kernel, rig.pid);
    ring.registerRecv(fd);
    EXPECT_DEATH(ring.registerRecv(fd), "already armed");
    EXPECT_DEATH(ring.registerRecv(999), "not a socket");
}

TEST(IoUringBlindSpotTest, AgentGoesBlindOnIoUringWorkload)
{
    // §V-C end-to-end: same workload, same agent; the classic path is
    // observable, the io_uring path is not.
    auto run = [](const char *name) {
        core::ExperimentConfig cfg;
        cfg.workload = workload::workloadByName(name);
        cfg.workload.saturationRps = 4000.0;
        cfg.offeredRps = 0.6 * cfg.workload.saturationRps;
        cfg.requests = 5000;
        cfg.seed = 9;
        return core::runExperiment(cfg);
    };
    const auto classic = run("data-caching");
    const auto ring = run("data-caching-iouring");

    // Both actually serve the load...
    EXPECT_NEAR(classic.achievedRps, 2400.0, 250.0);
    EXPECT_NEAR(ring.achievedRps, 2400.0, 250.0);
    // ...but only the classic path is visible to the syscall probes.
    EXPECT_GT(classic.observedRps, 0.9 * classic.achievedRps);
    EXPECT_LT(ring.observedRps, 0.05 * ring.achievedRps);
    EXPECT_GT(classic.pollMeanDurNs, 0.0);
    EXPECT_EQ(ring.pollMeanDurNs, 0.0);
    // And the ring path needs far fewer syscalls overall.
    EXPECT_LT(ring.syscalls, classic.syscalls / 3);
}

} // namespace
} // namespace reqobs::kernel
