/**
 * @file
 * Closed-loop controller suite: the FleetController's robustness
 * machinery (hysteresis bands, cooldowns, migration circuit breaker,
 * staleness guard) driven synthetically through tickWith(), the
 * eHashPipe sketch against exhaustive ground truth, and one end-to-end
 * cluster run with the controller enabled.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <vector>

#include "core/cluster.hh"
#include "core/controller.hh"
#include "ebpf/maps.hh"
#include "sim/rng.hh"
#include "sim/simulation.hh"

namespace reqobs {
namespace {

using core::ControllerConfig;
using core::ControllerInput;
using core::FleetActuators;
using core::FleetController;

// ---------------------------------------------------------------------
// Synthetic-fleet harness: drives tickWith() directly, recording every
// actuation, with no cluster underneath.

struct Harness
{
    sim::Simulation sim{7};
    ControllerConfig cfg;
    std::vector<std::pair<std::size_t, bool>> drains;
    std::vector<std::pair<std::size_t, unsigned>> workerSets;
    std::vector<std::pair<std::size_t, double>> sheds;
    sim::Tick lastRetryAfter = 0;

    explicit Harness(unsigned machines = 3, unsigned tenants = 2)
    {
        cfg.enabled = true;
        cfg.tickPeriod = sim::milliseconds(100);
        cfg.staleAfter = sim::milliseconds(1000);
        cfg.migrationCooldown = sim::milliseconds(500);
        cfg.scaleCooldown = sim::milliseconds(300);
        cfg.shedCooldown = sim::milliseconds(300);
        cfg.baseWorkers = 4;
        cfg.maxWorkers = 8;
        this->machines = machines;
        this->tenants = tenants;
    }

    unsigned machines, tenants;
    std::unique_ptr<FleetController> ctl;

    FleetController &
    controller()
    {
        if (!ctl) {
            FleetActuators act;
            act.setDrained = [this](std::size_t m, bool d) {
                drains.emplace_back(m, d);
            };
            act.setWorkerTarget = [this](std::size_t m, unsigned w) {
                workerSets.emplace_back(m, w);
            };
            act.setShed = [this](std::size_t t, double p, sim::Tick retry) {
                sheds.emplace_back(t, p);
                lastRetryAfter = retry;
            };
            ctl = std::make_unique<FleetController>(sim, cfg, machines,
                                                    tenants, std::move(act));
        }
        return *ctl;
    }

    /** A fresh all-healthy input set stamped at @p now. */
    std::vector<ControllerInput>
    healthy(sim::Tick now) const
    {
        std::vector<ControllerInput> in;
        for (std::size_t m = 0; m < machines; ++m) {
            for (std::size_t t = 0; t < tenants; ++t) {
                ControllerInput i;
                i.machine = m;
                i.tenant = t;
                i.t = now;
                i.slack = 0.9;
                i.varianceRatio = 1.0;
                in.push_back(i);
            }
        }
        return in;
    }

    /** Set every slot on machine @p m to @p slack. */
    static void
    slackOn(std::vector<ControllerInput> &in, std::size_t m, double slack)
    {
        for (auto &i : in)
            if (i.machine == m)
                i.slack = slack;
    }
};

TEST(ControllerConfigTest, RejectsInvertedBandsAndBounds)
{
    Harness h;
    auto broken = [&](auto mutate) {
        Harness g;
        mutate(g.cfg);
        EXPECT_DEATH(g.controller(), "FleetController");
    };
    broken([](ControllerConfig &c) { c.shedOffVarianceRatio = 9.0; });
    broken([](ControllerConfig &c) { c.undrainSlackAbove = 0.05; });
    broken([](ControllerConfig &c) { c.scaleDownSlackAbove = 0.01; });
    broken([](ControllerConfig &c) { c.shedMax = 1.5; });
    broken([](ControllerConfig &c) { c.maxWorkers = 1; });
    broken([](ControllerConfig &c) { c.tickPeriod = 0; });
}

TEST(ControllerStalenessTest, FreezesOnMissingOrOldWindows)
{
    Harness h;
    auto &c = h.controller();

    // No tenant anywhere has emitted a window: freeze.
    auto in = h.healthy(-1);
    for (auto &i : in)
        i.t = -1;
    Harness::slackOn(in, 0, 0.01); // would otherwise drain
    c.tickWith(in, sim::seconds(1));
    EXPECT_EQ(c.stats().frozenTicks, 1u);
    EXPECT_EQ(c.stats().migrations, 0u);
    EXPECT_TRUE(h.drains.empty());

    // Windows exist but the newest is older than staleAfter: freeze.
    in = h.healthy(sim::seconds(1));
    Harness::slackOn(in, 0, 0.01);
    c.tickWith(in, sim::seconds(1) + h.cfg.staleAfter + 1);
    EXPECT_EQ(c.stats().frozenTicks, 2u);
    EXPECT_EQ(c.stats().migrations, 0u);

    // Fresh again: actuation resumes.
    const sim::Tick now = sim::seconds(3);
    in = h.healthy(now);
    Harness::slackOn(in, 0, 0.01);
    c.tickWith(in, now);
    EXPECT_EQ(c.stats().frozenTicks, 2u);
    EXPECT_EQ(c.stats().migrations, 1u);
}

TEST(ControllerStalenessTest, StaleSlotIsExcludedFromFolds)
{
    Harness h;
    auto &c = h.controller();
    const sim::Tick now = sim::seconds(5);
    auto in = h.healthy(now);
    // Machine 0's slots report collapsed slack — but from long ago.
    for (auto &i : in)
        if (i.machine == 0) {
            i.slack = 0.01;
            i.t = now - h.cfg.staleAfter - 1;
        }
    c.tickWith(in, now);
    EXPECT_EQ(c.stats().migrations, 0u);
    EXPECT_FALSE(c.drained(0));
}

TEST(ControllerMigrationTest, DrainsOnSlackCollapseOnce)
{
    Harness h;
    auto &c = h.controller();
    sim::Tick now = sim::seconds(1);
    auto in = h.healthy(now);
    Harness::slackOn(in, 2, 0.05);
    c.tickWith(in, now);
    ASSERT_EQ(h.drains.size(), 1u);
    EXPECT_EQ(h.drains[0], (std::pair<std::size_t, bool>{2, true}));
    EXPECT_TRUE(c.drained(2));

    // Still pressed inside the cooldown: no further action.
    now += sim::milliseconds(100);
    in = h.healthy(now);
    Harness::slackOn(in, 2, 0.05);
    c.tickWith(in, now);
    EXPECT_EQ(c.stats().migrations, 1u);
    EXPECT_EQ(h.drains.size(), 1u);
}

TEST(ControllerMigrationTest, NeverDrainsTheLastMachine)
{
    Harness h(2, 1);
    auto &c = h.controller();
    const sim::Tick now = sim::seconds(1);
    auto in = h.healthy(now);
    Harness::slackOn(in, 0, 0.02);
    Harness::slackOn(in, 1, 0.02);
    c.tickWith(in, now);
    // Both machines qualify, but draining the second would leave zero.
    EXPECT_EQ(c.stats().migrations, 1u);
    EXPECT_NE(c.drained(0), c.drained(1));
}

TEST(ControllerMigrationTest, MidBandSlackNeverUndrains)
{
    Harness h;
    auto &c = h.controller();
    sim::Tick now = sim::seconds(1);
    auto in = h.healthy(now);
    Harness::slackOn(in, 0, 0.05);
    c.tickWith(in, now);
    ASSERT_TRUE(c.drained(0));

    // Active fleet hovers in the hysteresis band (between drainSlackBelow
    // and undrainSlackAbove) for many cooldown periods: the drained
    // machine must stay parked — this is exactly the reading that would
    // flap a single-threshold controller.
    for (int k = 0; k < 10; ++k) {
        now += h.cfg.migrationCooldown + 1;
        in = h.healthy(now);
        Harness::slackOn(in, 1, 0.20);
        Harness::slackOn(in, 2, 0.20);
        c.tickWith(in, now);
    }
    EXPECT_TRUE(c.drained(0));
    EXPECT_EQ(c.stats().undrains, 0u);
    EXPECT_EQ(c.stats().migrations, 1u);
    EXPECT_FALSE(c.stats().breakerOpen);
}

TEST(ControllerMigrationTest, ReclaimsCapacityWhenActiveFleetPressed)
{
    Harness h;
    auto &c = h.controller();
    sim::Tick now = sim::seconds(1);
    auto in = h.healthy(now);
    Harness::slackOn(in, 0, 0.05);
    c.tickWith(in, now);
    ASSERT_TRUE(c.drained(0));

    // The drain worked: active fleet recovered (clears the breaker
    // verdict), machine 0 stays parked.
    now += h.cfg.migrationCooldown + 1;
    c.tickWith(h.healthy(now), now);
    EXPECT_TRUE(c.drained(0));

    // Later the active fleet itself runs out of headroom: reclaim. (The
    // same tick may also drain the now-collapsed machines — that IS the
    // migration: load moves onto the reclaimed capacity.)
    now += h.cfg.migrationCooldown + 1;
    in = h.healthy(now);
    Harness::slackOn(in, 1, 0.05);
    Harness::slackOn(in, 2, 0.05);
    c.tickWith(in, now);
    EXPECT_FALSE(c.drained(0));
    EXPECT_EQ(c.stats().undrains, 1u);
    const std::pair<std::size_t, bool> undrain{0, false};
    EXPECT_NE(std::find(h.drains.begin(), h.drains.end(), undrain),
              h.drains.end());
}

TEST(ControllerBreakerTest, TripsAfterIneffectiveMigrationsAndStopsActing)
{
    Harness h;
    h.cfg.breakerThreshold = 3;
    auto &c = h.controller();

    // Whatever the controller drains, the fleet stays pressed (a load
    // problem, not a placement problem). Each judged-ineffective drain
    // bumps the streak until the breaker opens.
    sim::Tick now = sim::seconds(1);
    for (int k = 0; k < 12; ++k) {
        auto in = h.healthy(now);
        for (std::size_t m = 0; m < h.machines; ++m)
            Harness::slackOn(in, m, 0.03);
        c.tickWith(in, now);
        now += h.cfg.migrationCooldown + 1;
    }
    EXPECT_TRUE(c.stats().breakerOpen);
    EXPECT_GE(c.stats().breakerStreak, 3u);

    // Once open: no further drains or undrains, ever.
    const auto migrations = c.stats().migrations;
    const auto undrains = c.stats().undrains;
    for (int k = 0; k < 5; ++k) {
        auto in = h.healthy(now);
        for (std::size_t m = 0; m < h.machines; ++m)
            Harness::slackOn(in, m, 0.03);
        c.tickWith(in, now);
        now += h.cfg.migrationCooldown + 1;
    }
    EXPECT_EQ(c.stats().migrations, migrations);
    EXPECT_EQ(c.stats().undrains, undrains);
}

TEST(ControllerBreakerTest, EffectiveMigrationsResetTheStreak)
{
    Harness h;
    h.cfg.breakerThreshold = 2;
    auto &c = h.controller();

    sim::Tick now = sim::seconds(1);
    // Ineffective drain: fleet still pressed at the verdict.
    auto in = h.healthy(now);
    Harness::slackOn(in, 0, 0.03);
    c.tickWith(in, now);
    now += h.cfg.migrationCooldown + 1;
    in = h.healthy(now);
    Harness::slackOn(in, 1, 0.03);
    c.tickWith(in, now); // judges machine 0's drain: pressed -> streak 1
    EXPECT_EQ(c.stats().breakerStreak, 1u);

    // Machine 1's drain (made in the same tick) gets judged effective:
    // the fleet recovered, streak resets, breaker never opens.
    now += h.cfg.migrationCooldown + 1;
    c.tickWith(h.healthy(now), now);
    EXPECT_EQ(c.stats().breakerStreak, 0u);
    EXPECT_FALSE(c.stats().breakerOpen);
}

TEST(ControllerScalingTest, ScalesWithinBoundsUnderCooldown)
{
    Harness h(1, 1);
    auto &c = h.controller();
    EXPECT_EQ(c.workerTarget(0), 4u);

    // Slack collapse: up one step per cooldown, capped at maxWorkers.
    sim::Tick now = sim::seconds(1);
    for (int k = 0; k < 5; ++k) {
        auto in = h.healthy(now);
        Harness::slackOn(in, 0, 0.05);
        c.tickWith(in, now);
        now += h.cfg.scaleCooldown + 1;
    }
    EXPECT_EQ(c.workerTarget(0), 8u);
    EXPECT_EQ(c.stats().scaleUps, 2u); // 4 -> 6 -> 8, then pinned

    // Mid-band slack: no change (hysteresis).
    auto in = h.healthy(now);
    Harness::slackOn(in, 0, 0.40);
    c.tickWith(in, now);
    EXPECT_EQ(c.workerTarget(0), 8u);

    // Idle: back down to the floor, never below.
    for (int k = 0; k < 5; ++k) {
        now += h.cfg.scaleCooldown + 1;
        c.tickWith(h.healthy(now), now);
    }
    EXPECT_EQ(c.workerTarget(0), 4u);
    EXPECT_EQ(c.stats().scaleDowns, 2u);

    // Cooldown: a second collapse inside the window does nothing.
    auto pressed = h.healthy(now);
    Harness::slackOn(pressed, 0, 0.05);
    c.tickWith(pressed, now);
    const auto ups = c.stats().scaleUps;
    c.tickWith(pressed, now + 1);
    EXPECT_EQ(c.stats().scaleUps, ups);
}

TEST(ControllerShedTest, HysteresisBandAndCapAndRetryAfter)
{
    Harness h(1, 2);
    h.cfg.shedStep = 0.2;
    h.cfg.shedMax = 0.5;
    h.cfg.shedRetryAfter = sim::milliseconds(25);
    auto &c = h.controller();

    auto withRatio = [&](double ratio, sim::Tick now) {
        auto in = h.healthy(now);
        for (auto &i : in)
            if (i.tenant == 0)
                i.varianceRatio = ratio;
        return in;
    };

    // Above the knee: engage and climb to the cap, one step per cooldown.
    sim::Tick now = sim::seconds(1);
    for (int k = 0; k < 5; ++k) {
        c.tickWith(withRatio(12.0, now), now);
        now += h.cfg.shedCooldown + 1;
    }
    EXPECT_DOUBLE_EQ(c.shedProbability(0), 0.5);
    EXPECT_DOUBLE_EQ(c.shedProbability(1), 0.0); // other tenant untouched
    EXPECT_EQ(c.stats().shedEngagements, 1u);
    EXPECT_DOUBLE_EQ(c.stats().maxShed, 0.5);
    EXPECT_EQ(h.lastRetryAfter, sim::milliseconds(25));

    // In the band (between off=3 and on=8): hold, don't flap.
    for (int k = 0; k < 3; ++k) {
        c.tickWith(withRatio(5.0, now), now);
        now += h.cfg.shedCooldown + 1;
    }
    EXPECT_DOUBLE_EQ(c.shedProbability(0), 0.5);

    // Below the band: step back down to zero.
    for (int k = 0; k < 5; ++k) {
        c.tickWith(withRatio(1.0, now), now);
        now += h.cfg.shedCooldown + 1;
    }
    EXPECT_DOUBLE_EQ(c.shedProbability(0), 0.0);
    EXPECT_EQ(c.stats().shedEngagements, 1u); // one engagement, not many
}

TEST(ControllerShedTest, SaturationVerdictAloneEngages)
{
    Harness h(1, 1);
    auto &c = h.controller();
    auto in = h.healthy(sim::seconds(1));
    for (auto &i : in)
        i.saturated = true; // detector fired; ratio itself is low
    c.tickWith(in, sim::seconds(1));
    EXPECT_GT(c.shedProbability(0), 0.0);

    // Ratio low but detector still set: must NOT disengage.
    c.tickWith(in, sim::seconds(1) + h.cfg.shedCooldown + 1);
    EXPECT_GT(c.shedProbability(0), 0.0);
}

// ---------------------------------------------------------------------
// eHashPipe sketch vs exhaustive ground truth.

std::uint64_t
keyOf(const std::vector<std::uint8_t> &bytes)
{
    std::uint64_t k;
    std::memcpy(&k, bytes.data(), 8);
    return k;
}

void
updateSketch(ebpf::SketchMap &s, std::uint64_t key, std::uint64_t add)
{
    s.updateHot(reinterpret_cast<const std::uint8_t *>(&key),
                reinterpret_cast<const std::uint8_t *>(&add), 0);
}

TEST(SketchMapTest, ExactWhenKeysFitTopKMatchesExhaustiveTruth)
{
    // 4 stages x 64 slots holds 12 keys without ever dropping a carry,
    // so the sketch must be EXACT: every count equal to ground truth.
    ebpf::SketchMap sketch(8, 4, 64);
    std::map<std::uint64_t, std::uint64_t> truth;
    sim::Rng rng(42);
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t key = 1 + rng.uniformInt(12);
        const std::uint64_t add = 1 + rng.uniformInt(4);
        truth[key] += add;
        updateSketch(sketch, key, add);
    }
    ASSERT_EQ(sketch.evictions(), 0u);

    const auto top = sketch.topK(truth.size());
    ASSERT_EQ(top.size(), truth.size());
    std::uint64_t prev = ~0ull;
    for (const auto &[kb, count] : top) {
        EXPECT_EQ(count, truth.at(keyOf(kb)));
        EXPECT_LE(count, prev); // sorted descending
        prev = count;
    }
}

TEST(SketchMapTest, HeavyHittersSurviveContention)
{
    // 2 stages x 32 slots, 300 distinct tail keys: real contention (the
    // tail alone outnumbers the slots 5:1). The two overwhelming heavy
    // hitters must still surface near the top of the ranking, and no
    // count may exceed ground truth (HashPipe never overcounts).
    ebpf::SketchMap sketch(8, 2, 32);
    std::map<std::uint64_t, std::uint64_t> truth;
    sim::Rng rng(7);
    for (int i = 0; i < 30000; ++i) {
        std::uint64_t key;
        const double roll = rng.uniform();
        if (roll < 0.45)
            key = 1000;
        else if (roll < 0.80)
            key = 2000;
        else
            key = 1 + rng.uniformInt(300);
        truth[key] += 1;
        updateSketch(sketch, key, 1);
    }
    EXPECT_GT(sketch.evictions(), 0u); // contention actually happened

    const auto top = sketch.topK(6);
    ASSERT_GE(top.size(), 2u);
    bool saw_1000 = false, saw_2000 = false;
    for (const auto &[kb, count] : top) {
        saw_1000 = saw_1000 || keyOf(kb) == 1000u;
        saw_2000 = saw_2000 || keyOf(kb) == 2000u;
    }
    EXPECT_TRUE(saw_1000);
    EXPECT_TRUE(saw_2000);
    for (const auto &[kb, count] : sketch.topK(1000))
        EXPECT_LE(count, truth.at(keyOf(kb)));
}

TEST(SketchMapTest, DeleteIsNotPartOfTheStructure)
{
    ebpf::SketchMap sketch(8, 2, 4);
    const std::uint64_t key = 99;
    updateSketch(sketch, key, 5);
    EXPECT_EQ(sketch.erase(reinterpret_cast<const std::uint8_t *>(&key)),
              -22);
    // The entry is untouched.
    const std::uint8_t *v =
        sketch.lookupHot(reinterpret_cast<const std::uint8_t *>(&key));
    ASSERT_NE(v, nullptr);
    std::uint64_t count;
    std::memcpy(&count, v, 8);
    EXPECT_EQ(count, 5u);
}

// ---------------------------------------------------------------------
// End-to-end: a small cluster run with the controller in the loop.

TEST(ControllerClusterTest, ClosedLoopRunsAndReportsStats)
{
    core::ClusterExperimentConfig cfg;
    cfg.machines = 2;
    cfg.warmup = sim::milliseconds(200);
    cfg.seed = 5;
    core::ClusterTenantSpec t;
    t.workload = workload::workloadByName("img-dnn");
    t.offeredRps = 0.3 * t.workload.saturationRps * 2.0;
    t.requests = 1500;
    cfg.tenants.push_back(std::move(t));
    cfg.controller.enabled = true;
    cfg.controller.tickPeriod = sim::milliseconds(100);
    cfg.controller.maxWorkers = cfg.controller.baseWorkers;

    const auto res = core::runClusterExperiment(cfg);
    EXPECT_GT(res.controller.ticks, 0u);
    // A comfortably provisioned fleet: the controller must not act.
    EXPECT_EQ(res.controller.migrations, 0u);
    EXPECT_FALSE(res.controller.breakerOpen);
    EXPECT_DOUBLE_EQ(res.controller.maxShed, 0.0);
    // Every request arrives (nothing shed); completed excludes warmup.
    EXPECT_EQ(res.tenants[0].arrivals, 1500u);
    EXPECT_EQ(res.tenants[0].shedded, 0u);
    EXPECT_GT(res.tenants[0].completed, 1100u);
    EXPECT_FALSE(res.tenants[0].qosViolated);
}

TEST(ControllerClusterTest, LoadProfileShiftsOfferedRate)
{
    auto config = [](bool halved) {
        core::ClusterExperimentConfig cfg;
        // Two machines so neither run takes the degenerate
        // single-machine delegation path (which reports no arrivals).
        cfg.machines = 2;
        cfg.warmup = sim::milliseconds(200);
        cfg.seed = 6;
        core::ClusterTenantSpec t;
        t.workload = workload::workloadByName("img-dnn");
        t.offeredRps = 0.3 * t.workload.saturationRps * 2.0;
        t.requests = 800;
        // Halve the rate for the whole run: the arrival budget still
        // drains fully, at half the achieved rate.
        if (halved)
            t.loadProfile = {{cfg.warmup, 0.5}};
        cfg.tenants.push_back(std::move(t));
        return cfg;
    };
    const auto full = core::runClusterExperiment(config(false));
    const auto half = core::runClusterExperiment(config(true));
    EXPECT_EQ(full.tenants[0].arrivals, 800u);
    EXPECT_EQ(half.tenants[0].arrivals, 800u);
    EXPECT_LT(half.tenants[0].achievedRps,
              0.7 * full.tenants[0].achievedRps);
}

} // namespace
} // namespace reqobs
