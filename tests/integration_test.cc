/**
 * @file
 * Full-stack integration tests: the observability agent against live
 * workloads, trace collection, determinism, probe overhead, and the
 * paper's headline shapes on miniature load sweeps.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "client/load_generator.hh"
#include "core/experiment.hh"
#include "core/trace.hh"
#include "workload/server_app.hh"
#include "stats/regression.hh"

namespace reqobs::core {
namespace {

ExperimentConfig
miniConfig(const std::string &name, double load_fraction,
           std::uint64_t seed = 5)
{
    ExperimentConfig cfg;
    cfg.workload = workload::workloadByName(name);
    // Shrink the workload so tests stay fast.
    cfg.workload.saturationRps = std::min(cfg.workload.saturationRps,
                                          4000.0);
    cfg.offeredRps = load_fraction * cfg.workload.saturationRps;
    cfg.requests = 6000;
    cfg.seed = seed;
    return cfg;
}

TEST(AgentIntegrationTest, ObservedRpsTracksRealRps)
{
    const auto r = runExperiment(miniConfig("data-caching", 0.6));
    ASSERT_GT(r.completed, 4000u);
    EXPECT_NEAR(r.observedRps, r.achievedRps, 0.05 * r.achievedRps);
    EXPECT_FALSE(r.samples.empty());
    EXPECT_GT(r.probeEvents, 0u);
}

TEST(AgentIntegrationTest, SelectBasedWorkloadIsObservableToo)
{
    const auto r = runExperiment(miniConfig("xapian", 0.6));
    EXPECT_NEAR(r.observedRps, r.achievedRps, 0.05 * r.achievedRps);
    EXPECT_GT(r.pollMeanDurNs, 0.0); // select durations recorded
}

TEST(AgentIntegrationTest, DeterministicForAGivenSeed)
{
    const auto a = runExperiment(miniConfig("silo", 0.7, 99));
    const auto b = runExperiment(miniConfig("silo", 0.7, 99));
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_DOUBLE_EQ(a.observedRps, b.observedRps);
    EXPECT_EQ(a.p99Ns, b.p99Ns);
    EXPECT_DOUBLE_EQ(a.sendVarNs2, b.sendVarNs2);
    EXPECT_EQ(a.syscalls, b.syscalls);

    const auto c = runExperiment(miniConfig("silo", 0.7, 100));
    EXPECT_NE(a.observedRps, c.observedRps); // different seed -> new run
}

TEST(AgentIntegrationTest, PollDurationFallsWithLoad)
{
    const auto low = runExperiment(miniConfig("data-caching", 0.3));
    const auto high = runExperiment(miniConfig("data-caching", 0.9));
    EXPECT_GT(low.pollMeanDurNs, 2.0 * high.pollMeanDurNs);
}

TEST(AgentIntegrationTest, SaturationRaisesNormalizedVariance)
{
    const auto pre = runExperiment(miniConfig("data-caching", 0.7));
    const auto post = runExperiment(miniConfig("data-caching", 1.2));
    auto cv2 = [](const ExperimentResult &r) {
        const double mean = 1e9 / r.observedRps;
        return r.sendVarNs2 / (mean * mean);
    };
    EXPECT_GT(cv2(post), 2.0 * cv2(pre));
    EXPECT_TRUE(post.qosViolated);
    EXPECT_FALSE(pre.qosViolated);
}

TEST(AgentIntegrationTest, DetectorFlagsAStepIntoOverload)
{
    // The online detector learns its baseline below saturation, then the
    // load steps past it: the last samples must carry saturated=true and
    // near-zero slack.
    sim::Simulation sim(13);
    kernel::Kernel kernel(sim);
    auto wl = workload::workloadByName("data-caching");
    wl.saturationRps = 4000.0;
    workload::ServerApp app(kernel, wl);
    client::ClientConfig cc;
    cc.offeredRps = 0.5 * wl.saturationRps;
    cc.warmup = 0;
    client::LoadGenerator gen(sim, app, net::NetemConfig{},
                              net::TcpConfig{}, cc);
    ObservabilityAgent agent(kernel, app.frontPid(), profileFor(wl));
    app.start();
    agent.start();
    gen.start();
    sim.runFor(sim::seconds(2)); // learn the baseline at 50% load
    EXPECT_FALSE(agent.saturation().saturated());
    gen.setOfferedRps(1.3 * wl.saturationRps); // step into overload
    sim.runFor(sim::seconds(3));
    EXPECT_TRUE(agent.saturation().saturated());
    EXPECT_LT(agent.slackEstimator().slack(), 0.3);
    agent.stop();
    gen.stop();
}

TEST(AgentIntegrationTest, ProbeOverheadOnTailLatencyIsSmall)
{
    // §VI: "the median and upper quartile overhead remains significantly
    // below 1%".
    auto with = miniConfig("data-caching", 0.7, 17);
    auto without = with;
    without.attachAgent = false;
    const auto r_with = runExperiment(with);
    const auto r_without = runExperiment(without);
    const double overhead =
        std::abs(static_cast<double>(r_with.p99Ns) -
                 static_cast<double>(r_without.p99Ns)) /
        static_cast<double>(r_without.p99Ns);
    EXPECT_LT(overhead, 0.03);
    EXPECT_GT(r_with.probeCostNs, 0);
    EXPECT_EQ(r_without.probeEvents, 0u);
}

TEST(AgentIntegrationTest, MiniFigTwoCorrelation)
{
    // Four load points, windowed estimates -> R^2 of obs vs real.
    stats::LinearRegression reg;
    for (double frac : {0.3, 0.5, 0.7, 0.9}) {
        const auto r = runExperiment(miniConfig("data-caching", frac));
        for (const auto &s : r.samples)
            reg.add(s.rpsObsv, r.achievedRps);
    }
    const auto fit = reg.fit();
    EXPECT_GT(fit.r2, 0.90) << "n=" << fit.n;
}

TEST(TraceIntegrationTest, CollectorSeesOnlyItsProcessInOrder)
{
    sim::Simulation sim(3);
    kernel::Kernel kernel(sim);
    auto cfg = workload::workloadByName("data-caching");
    cfg.connections = 2;
    cfg.saturationRps = 2000.0;
    workload::ServerApp app(kernel, cfg);
    auto s1 = app.addConnection(1);
    auto s2 = app.addConnection(2);
    TraceCollector collector(kernel, app.frontPid());
    // A second process makes noise that must be filtered out.
    const kernel::Pid other = kernel.createProcess("noise");
    kernel.spawnThread(other,
                       [](kernel::Kernel &k, kernel::Tid tid)
                           -> kernel::Task {
                           for (int i = 0; i < 50; ++i)
                               co_await k.sleepFor(tid,
                                                   sim::microseconds(100));
                       });
    app.start();
    collector.start();
    for (int i = 1; i <= 20; ++i) {
        auto *sk = (i % 2 ? s1 : s2).get();
        kernel::Message m;
        m.requestId = static_cast<std::uint64_t>(i);
        sim.schedule(sim::microseconds(200) * i,
                     [&sim, sk, m] { sk->deliver(m, sim.now()); });
    }
    sim.runFor(sim::milliseconds(100));
    collector.stop();

    const auto &records = collector.records();
    ASSERT_GT(records.size(), 80u); // ~6 events/request + polls
    std::uint64_t prev_ts = 0;
    for (const auto &r : records) {
        EXPECT_EQ(kernel::tgidOf(r.pidTgid), app.frontPid());
        EXPECT_GE(r.ts, prev_ts); // chronological
        prev_ts = r.ts;
    }
    EXPECT_EQ(collector.drops(), 0u);
    EXPECT_FALSE(collector.format(8).empty());

    // Reconstruction on the real trace: single-request-at-a-time load
    // on an event-loop server pairs nearly perfectly (Fig. 1c).
    const auto report = reconstructTimelines(
        records, profileFor(cfg));
    EXPECT_EQ(report.requests.size(), 20u);
    EXPECT_GT(report.matchRate(), 0.95);
}

TEST(TraceIntegrationTest, RingBufferDropsAreCounted)
{
    sim::Simulation sim(3);
    kernel::Kernel kernel(sim);
    auto cfg = workload::workloadByName("data-caching");
    cfg.connections = 1;
    cfg.saturationRps = 8000.0;
    workload::ServerApp app(kernel, cfg);
    auto sock = app.addConnection(1);
    TraceConfig tc;
    tc.ringBytes = 256; // tiny: guaranteed overrun
    tc.drainPeriod = sim::seconds(10); // never drained during the run
    TraceCollector collector(kernel, app.frontPid(), tc);
    app.start();
    collector.start();
    auto *sk = sock.get();
    for (int i = 0; i < 50; ++i) {
        kernel::Message m;
        sim.schedule(sim::microseconds(100) * (i + 1),
                     [&sim, sk, m] { sk->deliver(m, sim.now()); });
    }
    sim.runFor(sim::milliseconds(50));
    EXPECT_GT(collector.drops(), 0u);
}

TEST(ExperimentTest, DefaultQosScalesWithWorkloadAndNetwork)
{
    const auto wl = workload::workloadByName("silo");
    net::NetemConfig clean, impaired;
    impaired.delay = sim::milliseconds(10);
    EXPECT_GT(defaultQosLatency(wl, impaired),
              defaultQosLatency(wl, clean) + sim::milliseconds(30));
}

TEST(ExperimentTest, LoadSweepProducesMonotoneThroughputUntilSaturation)
{
    ExperimentConfig base = miniConfig("data-caching", 0.5);
    const auto sweep = runLoadSweep(base, {0.3, 0.6, 0.9, 1.2});
    ASSERT_EQ(sweep.size(), 4u);
    EXPECT_LT(sweep[0].result.achievedRps, sweep[1].result.achievedRps);
    EXPECT_LT(sweep[1].result.achievedRps, sweep[2].result.achievedRps);
    // Past saturation throughput plateaus (within 15%).
    EXPECT_NEAR(sweep[3].result.achievedRps,
                base.workload.saturationRps,
                0.15 * base.workload.saturationRps);
    // p99 explodes across the QoS knee.
    EXPECT_GT(sweep[3].result.p99Ns, 3 * sweep[0].result.p99Ns);
}

} // namespace
} // namespace reqobs::core
