/**
 * @file
 * Workload tests: the registry of the paper's nine benchmarks, demand
 * calibration, and one served-request check per threading model with
 * syscall-vocabulary verification against §IV-A.
 */

#include <gtest/gtest.h>

#include <set>

#include "kernel/kernel.hh"
#include "sim/simulation.hh"
#include "workload/config.hh"
#include "workload/server_app.hh"

namespace reqobs::workload {
namespace {

using kernel::RawSyscallEvent;
using kernel::Syscall;
using kernel::syscallId;
using kernel::TracepointId;

TEST(RegistryTest, AllNinePaperWorkloadsPresent)
{
    const auto all = paperWorkloads();
    ASSERT_EQ(all.size(), 9u);
    const std::set<std::string> names = {
        "img-dnn", "xapian", "silo", "specjbb", "moses",
        "data-caching", "web-search", "triton-http", "triton-grpc"};
    for (const auto &cfg : all)
        EXPECT_TRUE(names.count(cfg.name)) << cfg.name;
}

TEST(RegistryTest, FailureRpsMatchesThePaper)
{
    EXPECT_DOUBLE_EQ(workloadByName("img-dnn").paperFailureRps, 1950.0);
    EXPECT_DOUBLE_EQ(workloadByName("xapian").paperFailureRps, 970.0);
    EXPECT_DOUBLE_EQ(workloadByName("silo").paperFailureRps, 2100.0);
    EXPECT_DOUBLE_EQ(workloadByName("specjbb").paperFailureRps, 3700.0);
    EXPECT_DOUBLE_EQ(workloadByName("moses").paperFailureRps, 900.0);
    EXPECT_DOUBLE_EQ(workloadByName("data-caching").paperFailureRps,
                     62000.0);
    EXPECT_DOUBLE_EQ(workloadByName("web-search").paperFailureRps, 420.0);
    EXPECT_DOUBLE_EQ(workloadByName("triton-http").paperFailureRps, 21.0);
    EXPECT_DOUBLE_EQ(workloadByName("triton-grpc").paperFailureRps, 21.0);
}

TEST(RegistryTest, SyscallVocabularyMatchesSectionFourA)
{
    // "in Tailbench, all applications use recvfrom and sendto ... and a
    //  legacy syscall called select"
    for (const char *name : {"img-dnn", "xapian", "silo", "specjbb",
                             "moses"}) {
        const auto cfg = workloadByName(name);
        EXPECT_EQ(cfg.recvSyscall, Syscall::Recvfrom) << name;
        EXPECT_EQ(cfg.sendSyscall, Syscall::Sendto) << name;
        EXPECT_EQ(cfg.pollSyscall, Syscall::Select) << name;
    }
    // "Data Caching employs read and sendmsg"
    const auto dc = workloadByName("data-caching");
    EXPECT_EQ(dc.recvSyscall, Syscall::Read);
    EXPECT_EQ(dc.sendSyscall, Syscall::Sendmsg);
    // "Web Search utilizes read and write"
    const auto ws = workloadByName("web-search");
    EXPECT_EQ(ws.recvSyscall, Syscall::Read);
    EXPECT_EQ(ws.sendSyscall, Syscall::Write);
    // "Triton with GRPC ... recvmsg and sendmsg, ... HTTP ... recvfrom
    //  and sendto"
    EXPECT_EQ(workloadByName("triton-grpc").recvSyscall, Syscall::Recvmsg);
    EXPECT_EQ(workloadByName("triton-grpc").sendSyscall, Syscall::Sendmsg);
    EXPECT_EQ(workloadByName("triton-http").recvSyscall, Syscall::Recvfrom);
    EXPECT_EQ(workloadByName("triton-http").sendSyscall, Syscall::Sendto);
}

TEST(RegistryTest, DemandCalibration)
{
    WorkloadConfig cfg;
    cfg.workers = 10;
    cfg.saturationRps = 1000.0;
    cfg.contentionStalls = false;
    // 10 workers at 1000 rps -> 10ms per request.
    EXPECT_NEAR(static_cast<double>(cfg.meanDemand()),
                static_cast<double>(sim::milliseconds(10)), 1000.0);
    cfg.contentionStalls = true;
    cfg.stallDurationMultiple = 4.0;
    cfg.stallCooldownMultiple = 20.0;
    EXPECT_NEAR(cfg.stallTimeShare(), 4.0 / 24.0, 1e-12);
    // Stall share shrinks the usable demand budget.
    EXPECT_LT(cfg.meanDemand(), sim::milliseconds(10));
}

TEST(RegistryDeathTest, UnknownNameIsFatal)
{
    EXPECT_DEATH(workloadByName("no-such-bench"), "unknown workload");
}

// ---------------------------------------------------------- served models

/** Drives one workload directly (no network) and records its syscalls. */
struct AppHarness
{
    sim::Simulation sim{11};
    kernel::Kernel kernel;
    std::set<std::int64_t> seen;

    explicit AppHarness(unsigned cores = 16)
        : kernel(sim,
                 [cores] {
                     kernel::KernelConfig kc;
                     kc.cpu.cores = cores;
                     kc.cpu.jitterSigma = 0.0;
                     return kc;
                 }())
    {
        for (auto point : {TracepointId::SysEnter, TracepointId::SysExit}) {
            kernel.tracepoints().attach(point,
                                        [this](const RawSyscallEvent &ev) {
                                            seen.insert(ev.syscall);
                                            return sim::Tick{0};
                                        });
        }
    }

    /** Deliver @p n requests to every connection and run for a while. */
    std::uint64_t
    serve(WorkloadConfig cfg, int n, sim::Tick spacing)
    {
        cfg.connections = 4;
        // Keep the demand small so the test runs fast.
        cfg.saturationRps = 4000.0;
        ServerApp app(kernel, cfg);
        std::vector<std::shared_ptr<kernel::Socket>> socks;
        for (unsigned c = 0; c < cfg.connections; ++c)
            socks.push_back(app.addConnection(c + 1));
        app.start();
        std::uint64_t id = 1;
        for (int i = 0; i < n; ++i) {
            for (auto &s : socks) {
                auto *sk = s.get();
                kernel::Message m;
                m.requestId = id++;
                m.bytes = 64;
                sim.schedule(spacing * (i + 1),
                             [this, sk, m] { sk->deliver(m, sim.now()); });
            }
        }
        sim.runFor(spacing * (n + 2) + sim::milliseconds(200));
        return app.requestsCompleted();
    }
};

class ThreadingModelTest
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(ThreadingModelTest, ServesEveryRequestAndUsesItsVocabulary)
{
    AppHarness h;
    WorkloadConfig cfg = workloadByName(GetParam());
    const std::uint64_t served = h.serve(cfg, 5, sim::milliseconds(2));
    EXPECT_EQ(served, 20u); // 5 rounds x 4 connections

    // The configured request-path syscalls must appear...
    EXPECT_TRUE(h.seen.count(syscallId(cfg.recvSyscall)));
    EXPECT_TRUE(h.seen.count(syscallId(cfg.sendSyscall)));
    EXPECT_TRUE(h.seen.count(syscallId(cfg.pollSyscall)));
    // ...and the *other* families' syscalls must not (except the
    // TwoStage internal hop, which legitimately uses read/write, and
    // the dispatcher's futex waits).
    if (cfg.model != ThreadingModel::TwoStage) {
        for (Syscall s : {Syscall::Recvfrom, Syscall::Recvmsg,
                          Syscall::Read}) {
            if (s != cfg.recvSyscall) {
                EXPECT_FALSE(h.seen.count(syscallId(s)))
                    << kernel::syscallName(syscallId(s));
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ThreadingModelTest,
                         ::testing::Values("data-caching", "img-dnn",
                                           "triton-grpc", "web-search"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (auto &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

TEST(ServerAppTest, DispatcherUsesFutexWorkers)
{
    AppHarness h;
    WorkloadConfig cfg = workloadByName("triton-http");
    h.serve(cfg, 3, sim::milliseconds(5));
    EXPECT_TRUE(h.seen.count(syscallId(Syscall::Futex)));
}

TEST(ServerAppTest, TwoStageRunsTwoProcesses)
{
    sim::Simulation sim(1);
    kernel::Kernel kernel(sim);
    ServerApp app(kernel, workloadByName("web-search"));
    EXPECT_NE(app.frontPid(), 0u);
    EXPECT_NE(app.backPid(), 0u);
    EXPECT_NE(app.frontPid(), app.backPid());
    EXPECT_EQ(kernel.processName(app.backPid()), "web-search-index");
}

TEST(ServerAppTest, SingleStageHasNoBackend)
{
    sim::Simulation sim(1);
    kernel::Kernel kernel(sim);
    ServerApp app(kernel, workloadByName("silo"));
    EXPECT_EQ(app.backPid(), 0u);
}

TEST(ServerAppDeathTest, MisuseIsFatal)
{
    sim::Simulation sim(1);
    kernel::Kernel kernel(sim);
    ServerApp app(kernel, workloadByName("silo"));
    EXPECT_DEATH(app.start(), "no connections");
    app.addConnection(1);
    app.start();
    EXPECT_DEATH(app.addConnection(2), "after start");
    EXPECT_DEATH(app.start(), "twice");
}

} // namespace
} // namespace reqobs::workload
