/**
 * @file
 * Probe-library tests: the Listing-1 duration probe pair, the
 * inter-syscall delta probe and the ring-buffer stream probe, all
 * executed as verified bytecode against the simulated kernel's
 * tracepoints.
 */

#include <gtest/gtest.h>

#include "ebpf/assembler.hh"
#include "ebpf/probes.hh"
#include "ebpf/runtime.hh"
#include "ebpf/verifier.hh"
#include <cstring>
#include "kernel/kernel.hh"
#include "sim/simulation.hh"

namespace reqobs::ebpf {
namespace {

using kernel::Fd;
using kernel::Kernel;
using kernel::Message;
using kernel::Pid;
using kernel::Syscall;
using kernel::Task;
using kernel::Tid;
using probes::SyscallStats;

struct ProbeHarness
{
    sim::Simulation sim{7};
    Kernel kernel{sim};
    EbpfRuntime rt{kernel};
    Pid pid = kernel.createProcess("app");

    void
    attach(ProgramSpec spec, kernel::TracepointId point)
    {
        const auto vr = rt.loadAndAttach(std::move(spec), point);
        ASSERT_TRUE(vr.ok) << vr.error;
    }
};

TEST(DurationProbeTest, MeasuresNanosleepDurations)
{
    ProbeHarness h;
    const auto maps = probes::createDurationMaps(h.rt, "sleep");
    h.attach(probes::buildDurationEnter(h.rt, h.pid,
                                        syscallId(Syscall::Nanosleep), maps),
             kernel::TracepointId::SysEnter);
    h.attach(probes::buildDurationExit(h.rt, h.pid,
                                       syscallId(Syscall::Nanosleep), maps),
             kernel::TracepointId::SysExit);

    h.kernel.spawnThread(h.pid, [](Kernel &k, Tid tid) -> Task {
        co_await k.sleepFor(tid, sim::milliseconds(2));
        co_await k.sleepFor(tid, sim::milliseconds(4));
    });
    h.sim.runFor(sim::milliseconds(10));

    const auto stats = h.rt.arrayAt(maps.statsFd).at<SyscallStats>(0);
    EXPECT_EQ(stats.count, 2u);
    // Durations include the probe cost itself; allow generous slack.
    EXPECT_NEAR(static_cast<double>(stats.sumNs),
                static_cast<double>(sim::milliseconds(6)),
                static_cast<double>(sim::microseconds(10)));
    EXPECT_GT(stats.sumSqQ, 0u);
}

TEST(DurationProbeTest, FiltersByTgid)
{
    ProbeHarness h;
    const Pid other = h.kernel.createProcess("other");
    const auto maps = probes::createDurationMaps(h.rt, "sleep");
    h.attach(probes::buildDurationEnter(h.rt, h.pid,
                                        syscallId(Syscall::Nanosleep), maps),
             kernel::TracepointId::SysEnter);
    h.attach(probes::buildDurationExit(h.rt, h.pid,
                                       syscallId(Syscall::Nanosleep), maps),
             kernel::TracepointId::SysExit);
    // Only the *other* process sleeps: nothing may be recorded.
    h.kernel.spawnThread(other, [](Kernel &k, Tid tid) -> Task {
        co_await k.sleepFor(tid, sim::milliseconds(1));
    });
    h.sim.runFor(sim::milliseconds(5));
    EXPECT_EQ(h.rt.arrayAt(maps.statsFd).at<SyscallStats>(0).count, 0u);
}

TEST(DurationProbeTest, FiltersBySyscall)
{
    ProbeHarness h;
    const auto maps = probes::createDurationMaps(h.rt, "epoll");
    h.attach(probes::buildDurationEnter(h.rt, h.pid,
                                        syscallId(Syscall::EpollWait), maps),
             kernel::TracepointId::SysEnter);
    h.attach(probes::buildDurationExit(h.rt, h.pid,
                                       syscallId(Syscall::EpollWait), maps),
             kernel::TracepointId::SysExit);
    h.kernel.spawnThread(h.pid, [](Kernel &k, Tid tid) -> Task {
        co_await k.sleepFor(tid, sim::milliseconds(1)); // not epoll_wait
    });
    h.sim.runFor(sim::milliseconds(5));
    EXPECT_EQ(h.rt.arrayAt(maps.statsFd).at<SyscallStats>(0).count, 0u);
}

TEST(DurationProbeTest, TracksConcurrentThreadsIndependently)
{
    // Two threads sleeping overlapping intervals: the per-pid_tgid start
    // map must keep them separate (this is why Listing 1 keys by
    // pid_tgid).
    ProbeHarness h;
    const auto maps = probes::createDurationMaps(h.rt, "sleep");
    h.attach(probes::buildDurationEnter(h.rt, h.pid,
                                        syscallId(Syscall::Nanosleep), maps),
             kernel::TracepointId::SysEnter);
    h.attach(probes::buildDurationExit(h.rt, h.pid,
                                       syscallId(Syscall::Nanosleep), maps),
             kernel::TracepointId::SysExit);
    for (int i = 0; i < 2; ++i) {
        h.kernel.spawnThread(h.pid, [i](Kernel &k, Tid tid) -> Task {
            co_await k.sleepFor(tid, sim::milliseconds(i == 0 ? 3 : 5));
        });
    }
    h.sim.runFor(sim::milliseconds(10));
    const auto stats = h.rt.arrayAt(maps.statsFd).at<SyscallStats>(0);
    EXPECT_EQ(stats.count, 2u);
    EXPECT_NEAR(static_cast<double>(stats.sumNs),
                static_cast<double>(sim::milliseconds(8)),
                static_cast<double>(sim::microseconds(10)));
}

TEST(DeltaProbeTest, AccumulatesInterSendDeltas)
{
    ProbeHarness h;
    auto [fd, sock] = h.kernel.installSocket(h.pid, 1);
    const auto maps = probes::createDeltaMaps(h.rt, "send");
    h.attach(probes::buildDeltaExit(h.rt, h.pid,
                                    {syscallId(Syscall::Sendto)}, maps),
             kernel::TracepointId::SysExit);

    // Send 4 messages spaced exactly 1ms apart.
    h.kernel.spawnThread(h.pid, [fd = fd](Kernel &k, Tid tid) -> Task {
        for (int i = 0; i < 4; ++i) {
            co_await k.send(tid, fd, Message{}, Syscall::Sendto);
            co_await k.sleepFor(tid, sim::milliseconds(1));
        }
    });
    h.sim.runFor(sim::milliseconds(10));

    const auto stats = h.rt.arrayAt(maps.statsFd).at<SyscallStats>(0);
    EXPECT_EQ(stats.count, 3u); // deltas = sends - 1
    EXPECT_NEAR(static_cast<double>(stats.sumNs),
                static_cast<double>(sim::milliseconds(3)),
                static_cast<double>(sim::microseconds(30)));
    // Deltas ~equal -> variance derived from the sums is ~0.
    const double scale = 1 << probes::kDeltaShift;
    const double mean_q =
        static_cast<double>(stats.sumNs) / 3.0 / scale;
    const double ex2_q = static_cast<double>(stats.sumSqQ) / 3.0;
    EXPECT_NEAR(ex2_q, mean_q * mean_q, 0.02 * mean_q * mean_q);
}

TEST(DeltaProbeTest, FamilyMatchingCoversAllMembers)
{
    ProbeHarness h;
    auto [fd, sock] = h.kernel.installSocket(h.pid, 1);
    const auto maps = probes::createDeltaMaps(h.rt, "send");
    h.attach(probes::buildDeltaExit(h.rt, h.pid,
                                    {syscallId(Syscall::Write),
                                     syscallId(Syscall::Sendto),
                                     syscallId(Syscall::Sendmsg)},
                                    maps),
             kernel::TracepointId::SysExit);
    h.kernel.spawnThread(h.pid, [fd = fd](Kernel &k, Tid tid) -> Task {
        co_await k.send(tid, fd, Message{}, Syscall::Write);
        co_await k.send(tid, fd, Message{}, Syscall::Sendmsg);
        co_await k.send(tid, fd, Message{}, Syscall::Sendto);
        co_await k.recv(tid, fd, Syscall::Read); // not in the family
    });
    h.sim.runFor(sim::milliseconds(5));
    EXPECT_EQ(h.rt.arrayAt(maps.statsFd).at<SyscallStats>(0).count, 2u);
}

TEST(StreamProbeTest, EmitsRecordsForEveryEvent)
{
    ProbeHarness h;
    const auto maps = probes::createStreamMaps(h.rt, 1 << 16, "trace");
    h.attach(probes::buildStreamProbe(h.rt, h.pid, false, maps),
             kernel::TracepointId::SysEnter);
    h.attach(probes::buildStreamProbe(h.rt, h.pid, true, maps),
             kernel::TracepointId::SysExit);

    h.kernel.spawnThread(h.pid, [](Kernel &k, Tid tid) -> Task {
        co_await k.sleepFor(tid, sim::milliseconds(1));
    });
    h.sim.runFor(sim::milliseconds(5));

    std::vector<probes::StreamRecord> recs;
    h.rt.ringbufAt(maps.ringFd)
        .consume([&](const std::uint8_t *d, std::uint32_t len) {
            ASSERT_EQ(len, sizeof(probes::StreamRecord));
            probes::StreamRecord r;
            std::memcpy(&r, d, len);
            recs.push_back(r);
        });
    ASSERT_EQ(recs.size(), 2u); // enter + exit of the one nanosleep
    EXPECT_EQ(recs[0].id, (std::uint64_t)syscallId(Syscall::Nanosleep));
    EXPECT_EQ(recs[0].point, 0u);
    EXPECT_EQ(recs[1].point, 1u);
    EXPECT_GT(recs[1].ts, recs[0].ts);
    EXPECT_EQ(kernel::tgidOf(recs[0].pidTgid), h.pid);
}

TEST(RuntimeTest, ProbeCostIsChargedToThreads)
{
    ProbeHarness h;
    const auto maps = probes::createDeltaMaps(h.rt, "send");
    h.attach(probes::buildDeltaExit(h.rt, h.pid,
                                    {syscallId(Syscall::Sendto)}, maps),
             kernel::TracepointId::SysExit);
    auto [fd, sock] = h.kernel.installSocket(h.pid, 1);
    h.kernel.spawnThread(h.pid, [fd = fd](Kernel &k, Tid tid) -> Task {
        co_await k.send(tid, fd, Message{}, Syscall::Sendto);
    });
    h.sim.runFor(sim::milliseconds(1));
    EXPECT_GT(h.rt.eventsProcessed(), 0u);
    EXPECT_GT(h.rt.insnsInterpreted(), 0u);
    EXPECT_GT(h.rt.totalProbeCost(), 0);
}

TEST(RuntimeTest, RejectedProgramsAreNotAttached)
{
    ProbeHarness h;
    ProgramSpec bad;
    bad.name = "bad";
    ProgramBuilder b;
    b.mov(R0, R5).exit_(); // uninitialised read
    bad.insns = b.build();
    const auto vr =
        h.rt.loadAndAttach(std::move(bad), kernel::TracepointId::SysExit);
    EXPECT_FALSE(vr.ok);
    EXPECT_EQ(h.rt.loadedPrograms(), 0u);
    EXPECT_EQ(h.kernel.tracepoints().probeCount(
                  kernel::TracepointId::SysExit),
              0u);
}

TEST(RuntimeTest, UnloadDetaches)
{
    ProbeHarness h;
    const auto maps = probes::createDeltaMaps(h.rt, "send");
    ProgId id = 0;
    const auto vr = h.rt.loadAndAttach(
        probes::buildDeltaExit(h.rt, h.pid, {syscallId(Syscall::Sendto)},
                               maps),
        kernel::TracepointId::SysExit, &id);
    ASSERT_TRUE(vr.ok) << vr.error;
    EXPECT_EQ(h.rt.loadedPrograms(), 1u);
    h.rt.unload(id);
    EXPECT_EQ(h.rt.loadedPrograms(), 0u);
    EXPECT_EQ(h.kernel.tracepoints().probeCount(
                  kernel::TracepointId::SysExit),
              0u);
}

TEST(RuntimeTest, AllPaperProbesPassTheVerifier)
{
    ProbeHarness h;
    const auto dmaps = probes::createDurationMaps(h.rt, "d");
    const auto emaps = probes::createDeltaMaps(h.rt, "e");
    const auto smaps = probes::createStreamMaps(h.rt, 4096, "s");
    const std::vector<std::int64_t> family{
        syscallId(Syscall::Write), syscallId(Syscall::Sendto),
        syscallId(Syscall::Sendmsg)};

    for (ProgramSpec spec :
         {probes::buildDurationEnter(h.rt, 1234, 232, dmaps),
          probes::buildDurationExit(h.rt, 1234, 232, dmaps),
          probes::buildDeltaExit(h.rt, 1234, family, emaps),
          probes::buildStreamProbe(h.rt, 1234, true, smaps)}) {
        const auto vr = verify(spec);
        EXPECT_TRUE(vr.ok) << spec.name << ": " << vr.error;
    }
}

} // namespace
} // namespace reqobs::ebpf
