/**
 * @file
 * Unit and small integration tests for the simulated kernel: syscall
 * dispatch with tracepoints, epoll/select blocking semantics, socket
 * plumbing, the futex notifier and probe-cost charging.
 */

#include <gtest/gtest.h>

#include <vector>

#include "kernel/kernel.hh"
#include "kernel/notifier.hh"
#include "kernel/syscalls.hh"
#include "kernel/system_spec.hh"
#include "sim/simulation.hh"

namespace reqobs::kernel {
namespace {

/** Records every tracepoint event for assertions. */
struct EventLog
{
    std::vector<RawSyscallEvent> events;

    void
    attachTo(Kernel &k)
    {
        for (auto point : {TracepointId::SysEnter, TracepointId::SysExit}) {
            k.tracepoints().attach(point,
                                   [this](const RawSyscallEvent &ev) {
                                       events.push_back(ev);
                                       return sim::Tick{0};
                                   });
        }
    }

    std::size_t
    countOf(Syscall s, TracepointId point) const
    {
        std::size_t n = 0;
        for (const auto &ev : events)
            n += ev.syscall == syscallId(s) && ev.point == point;
        return n;
    }
};

struct Harness
{
    sim::Simulation sim{1};
    Kernel kernel{sim};
    EventLog log;

    Harness() { log.attachTo(kernel); }
};

// ------------------------------------------------------------ tracepoints

TEST(TracepointTest, AttachFireDetach)
{
    TracepointRegistry reg;
    int calls = 0;
    const ProbeHandle h =
        reg.attach(TracepointId::SysEnter, [&](const RawSyscallEvent &) {
            ++calls;
            return sim::Tick{7};
        });
    RawSyscallEvent ev;
    ev.point = TracepointId::SysEnter;
    EXPECT_EQ(reg.fire(ev), 7);
    ev.point = TracepointId::SysExit;
    EXPECT_EQ(reg.fire(ev), 0); // wrong point: probe not run
    EXPECT_EQ(calls, 1);
    reg.detach(h);
    ev.point = TracepointId::SysEnter;
    EXPECT_EQ(reg.fire(ev), 0);
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(reg.firedCount(), 3u);
}

TEST(TracepointTest, CostsSumAcrossProbes)
{
    TracepointRegistry reg;
    for (int i = 0; i < 3; ++i) {
        reg.attach(TracepointId::SysExit,
                   [](const RawSyscallEvent &) { return sim::Tick{10}; });
    }
    RawSyscallEvent ev;
    ev.point = TracepointId::SysExit;
    EXPECT_EQ(reg.fire(ev), 30);
    EXPECT_EQ(reg.probeCount(TracepointId::SysExit), 3u);
}

// ---------------------------------------------------------------- sockets

TEST(SocketTest, FifoDeliveryAndCounters)
{
    Socket s(42);
    EXPECT_FALSE(s.readable());
    Message a, b;
    a.requestId = 1;
    b.requestId = 2;
    s.deliver(a, 100);
    s.deliver(b, 200);
    EXPECT_TRUE(s.readable());
    EXPECT_EQ(s.rxDepth(), 2u);
    EXPECT_EQ(s.pop().requestId, 1u);
    EXPECT_EQ(s.pop().requestId, 2u);
    EXPECT_EQ(s.delivered(), 2u);
    EXPECT_EQ(s.consumed(), 2u);
}

TEST(SocketTest, TransmitInvokesHook)
{
    Socket s(1);
    std::vector<std::uint64_t> sent;
    s.setTxHandler([&](Message &&m) { sent.push_back(m.requestId); });
    Message m;
    m.requestId = 9;
    s.transmit(std::move(m));
    EXPECT_EQ(sent, (std::vector<std::uint64_t>{9}));
    EXPECT_EQ(s.transmitted(), 1u);
}

// ------------------------------------------------------------------ epoll

TEST(EpollTest, LevelTriggeredCollect)
{
    auto sock = std::make_shared<Socket>(1);
    EpollInstance ep;
    ep.add(5, sock);
    EXPECT_TRUE(ep.collectReady(8).empty());
    sock->deliver(Message{}, 0);
    auto ready = ep.collectReady(8);
    ASSERT_EQ(ready.size(), 1u);
    EXPECT_EQ(ready[0].fd, 5);
    // Level semantics: still ready until drained.
    EXPECT_EQ(ep.collectReady(8).size(), 1u);
    sock->pop();
    EXPECT_TRUE(ep.collectReady(8).empty());
}

TEST(EpollTest, MaxEventsCaps)
{
    EpollInstance ep;
    std::vector<std::shared_ptr<Socket>> socks;
    for (int i = 0; i < 6; ++i) {
        socks.push_back(std::make_shared<Socket>(i));
        socks.back()->deliver(Message{}, 0);
        ep.add(i, socks.back());
    }
    EXPECT_EQ(ep.collectReady(4).size(), 4u);
}

TEST(EpollTest, WakesOneWaiterPerEdge)
{
    auto sock = std::make_shared<Socket>(1);
    EpollInstance ep;
    ep.add(3, sock);
    int woken_a = 0, woken_b = 0;
    ep.addWaiter([&] { ++woken_a; });
    ep.addWaiter([&] { ++woken_b; });
    sock->deliver(Message{}, 0);
    EXPECT_EQ(woken_a + woken_b, 1); // FIFO: exactly one
    EXPECT_EQ(woken_a, 1);
    EXPECT_EQ(ep.waiterCount(), 1u);
}

TEST(EpollTest, RemoveWaiter)
{
    EpollInstance ep;
    auto sock = std::make_shared<Socket>(1);
    ep.add(3, sock);
    bool woken = false;
    const auto id = ep.addWaiter([&] { woken = true; });
    ep.removeWaiter(id);
    sock->deliver(Message{}, 0);
    EXPECT_FALSE(woken);
}

TEST(EpollTest, RemoveFdStopsNotifications)
{
    EpollInstance ep;
    auto sock = std::make_shared<Socket>(1);
    ep.add(3, sock);
    ep.remove(3);
    sock->deliver(Message{}, 0);
    EXPECT_TRUE(ep.collectReady(8).empty());
}

// --------------------------------------------------- syscalls end-to-end

TEST(KernelSyscallTest, EchoThreadRoundTrip)
{
    Harness h;
    const Pid pid = h.kernel.createProcess("echo");
    auto [fd, sock] = h.kernel.installSocket(pid, 1);
    std::vector<Message> out;
    sock->setTxHandler([&](Message &&m) { out.push_back(m); });

    const Fd conn = fd;
    h.kernel.spawnThread(pid, [conn](Kernel &k, Tid tid) -> Task {
        const Fd epfd = k.epollCreate(tid);
        k.epollCtlAdd(tid, epfd, conn);
        for (;;) {
            auto ready = co_await k.epollWait(tid, epfd, 4, -1);
            for (auto &r : ready) {
                auto rx = co_await k.recv(tid, r.fd, Syscall::Recvfrom);
                if (!rx.ok)
                    continue;
                Message resp = rx.msg;
                resp.isResponse = true;
                co_await k.send(tid, r.fd, std::move(resp),
                                Syscall::Sendto);
            }
        }
    });

    // Two requests, spaced apart.
    auto *sk = sock.get();
    h.sim.schedule(sim::microseconds(10), [&, sk] {
        Message m;
        m.requestId = 11;
        sk->deliver(std::move(m), h.sim.now());
    });
    h.sim.schedule(sim::microseconds(500), [&, sk] {
        Message m;
        m.requestId = 22;
        sk->deliver(std::move(m), h.sim.now());
    });
    h.sim.runFor(sim::milliseconds(2));

    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].requestId, 11u);
    EXPECT_EQ(out[1].requestId, 22u);
    EXPECT_TRUE(out[0].isResponse);

    // Trace sanity: one recvfrom and one sendto per request, epoll_wait
    // enters >= 2, and everything carries the right pid.
    EXPECT_EQ(h.log.countOf(Syscall::Recvfrom, TracepointId::SysExit), 2u);
    EXPECT_EQ(h.log.countOf(Syscall::Sendto, TracepointId::SysExit), 2u);
    EXPECT_GE(h.log.countOf(Syscall::EpollWait, TracepointId::SysEnter), 2u);
    for (const auto &ev : h.log.events)
        EXPECT_EQ(tgidOf(ev.pidTgid), pid);
}

TEST(KernelSyscallTest, EpollWaitDurationReflectsIdleness)
{
    Harness h;
    const Pid pid = h.kernel.createProcess("idle");
    auto [fd, sock] = h.kernel.installSocket(pid, 1);

    h.kernel.spawnThread(pid, [fd = fd](Kernel &k, Tid tid) -> Task {
        const Fd epfd = k.epollCreate(tid);
        k.epollCtlAdd(tid, epfd, fd);
        co_await k.epollWait(tid, epfd, 4, -1);
    });

    auto *sk = sock.get();
    h.sim.schedule(sim::milliseconds(3),
                   [&, sk] { sk->deliver(Message{}, h.sim.now()); });
    h.sim.runFor(sim::milliseconds(5));

    // Find the epoll_wait enter/exit pair and check its duration covers
    // the 3ms idle wait.
    sim::Tick enter = -1, exit = -1;
    for (const auto &ev : h.log.events) {
        if (ev.syscall != syscallId(Syscall::EpollWait))
            continue;
        if (ev.point == TracepointId::SysEnter)
            enter = ev.timestamp;
        else
            exit = ev.timestamp;
    }
    ASSERT_GE(enter, 0);
    ASSERT_GT(exit, enter);
    EXPECT_NEAR(static_cast<double>(exit - enter),
                static_cast<double>(sim::milliseconds(3)),
                static_cast<double>(sim::microseconds(20)));
}

TEST(KernelSyscallTest, EpollWaitTimeoutReturnsEmpty)
{
    Harness h;
    const Pid pid = h.kernel.createProcess("timeout");
    auto [fd, sock] = h.kernel.installSocket(pid, 1);
    std::size_t got = 99;
    h.kernel.spawnThread(pid, [fd = fd, &got](Kernel &k, Tid tid) -> Task {
        const Fd epfd = k.epollCreate(tid);
        k.epollCtlAdd(tid, epfd, fd);
        auto ready =
            co_await k.epollWait(tid, epfd, 4, sim::milliseconds(1));
        got = ready.size();
    });
    h.sim.runFor(sim::milliseconds(5));
    EXPECT_EQ(got, 0u);
}

TEST(KernelSyscallTest, RecvOnEmptySocketReturnsEagain)
{
    Harness h;
    const Pid pid = h.kernel.createProcess("eagain");
    auto [fd, sock] = h.kernel.installSocket(pid, 1);
    std::int64_t ret = 0;
    h.kernel.spawnThread(pid, [fd = fd, &ret](Kernel &k, Tid tid) -> Task {
        auto rx = co_await k.recv(tid, fd, Syscall::Read);
        ret = rx.ret;
    });
    h.sim.runFor(sim::milliseconds(1));
    EXPECT_EQ(ret, -11);
}

TEST(KernelSyscallTest, SelectWakesOnData)
{
    Harness h;
    const Pid pid = h.kernel.createProcess("sel");
    auto [fd1, s1] = h.kernel.installSocket(pid, 1);
    auto [fd2, s2] = h.kernel.installSocket(pid, 2);
    std::vector<Fd> got;
    h.kernel.spawnThread(
        pid, [fd1 = fd1, fd2 = fd2, &got](Kernel &k, Tid tid) -> Task {
            std::vector<Fd> fds{fd1, fd2};
            got = co_await k.select(tid, std::move(fds), -1);
        });
    auto *sk = s2.get();
    h.sim.schedule(sim::microseconds(100),
                   [&, sk] { sk->deliver(Message{}, h.sim.now()); });
    h.sim.runFor(sim::milliseconds(1));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], fd2);
    EXPECT_GE(h.log.countOf(Syscall::Select, TracepointId::SysExit), 1u);
}

TEST(KernelSyscallTest, AcceptDrainsListenQueue)
{
    Harness h;
    const Pid pid = h.kernel.createProcess("srv");
    Fd listen_fd = -1;
    Fd accepted = -1;
    h.kernel.spawnThread(pid,
                         [&listen_fd, &accepted](Kernel &k,
                                                 Tid tid) -> Task {
                             listen_fd = k.listen(tid);
                             accepted = co_await k.accept(tid, listen_fd);
                         });
    h.sim.runFor(sim::microseconds(1)); // let listen() run
    ASSERT_GE(listen_fd, 0);
    // accept() with empty backlog -> EAGAIN first.
    h.sim.runFor(sim::milliseconds(1));
    EXPECT_EQ(accepted, -11);

    Fd accepted2 = -1;
    h.kernel.enqueueIncomingConnection(pid, listen_fd,
                                       std::make_shared<Socket>(77));
    h.kernel.spawnThread(
        pid, [listen_fd, &accepted2](Kernel &k, Tid tid) -> Task {
            accepted2 = co_await k.accept(tid, listen_fd);
        });
    h.sim.runFor(sim::milliseconds(1));
    EXPECT_GE(accepted2, 0);
    EXPECT_NE(h.kernel.socketAt(pid, accepted2), nullptr);
}

TEST(KernelSyscallTest, SleepForTakesSimulatedTime)
{
    Harness h;
    const Pid pid = h.kernel.createProcess("sleepy");
    sim::Tick woke = -1;
    h.kernel.spawnThread(pid, [&woke](Kernel &k, Tid tid) -> Task {
        co_await k.sleepFor(tid, sim::milliseconds(7));
        woke = k.sim().now();
    });
    h.sim.runFor(sim::milliseconds(10));
    EXPECT_NEAR(static_cast<double>(woke),
                static_cast<double>(sim::milliseconds(7)), 5000.0);
    EXPECT_EQ(h.log.countOf(Syscall::Nanosleep, TracepointId::SysExit), 1u);
}

TEST(KernelSyscallTest, SocketPairCrossDelivers)
{
    Harness h;
    const Pid a = h.kernel.createProcess("a");
    const Pid b = h.kernel.createProcess("b");
    auto [fd_a, fd_b] =
        h.kernel.socketPair(a, b, sim::microseconds(20));
    std::uint64_t got = 0;
    h.kernel.spawnThread(b, [fd_b = fd_b, &got](Kernel &k, Tid tid) -> Task {
        const Fd epfd = k.epollCreate(tid);
        k.epollCtlAdd(tid, epfd, fd_b);
        co_await k.epollWait(tid, epfd, 4, -1);
        auto rx = co_await k.recv(tid, fd_b, Syscall::Read);
        got = rx.msg.requestId;
    });
    h.kernel.spawnThread(a, [fd_a = fd_a](Kernel &k, Tid tid) -> Task {
        Message m;
        m.requestId = 314;
        co_await k.send(tid, fd_a, std::move(m), Syscall::Write);
    });
    h.sim.runFor(sim::milliseconds(1));
    EXPECT_EQ(got, 314u);
}

TEST(KernelSyscallTest, ProbeCostDilatesSyscalls)
{
    // Attach an expensive probe; thread timelines must stretch by it.
    sim::Simulation sim(1);
    Kernel kernel(sim);
    kernel.tracepoints().attach(
        TracepointId::SysEnter,
        [](const RawSyscallEvent &) { return sim::microseconds(50); });

    const Pid pid = kernel.createProcess("p");
    sim::Tick finished = -1;
    kernel.spawnThread(pid, [&finished](Kernel &k, Tid tid) -> Task {
        co_await k.sleepFor(tid, sim::microseconds(10));
        finished = k.sim().now();
    });
    sim.runFor(sim::milliseconds(1));
    // 50us probe + 10us sleep (plus sub-us exit cost).
    EXPECT_GE(finished, sim::microseconds(60));
}

TEST(KernelSyscallTest, ThreadFinishTracked)
{
    Harness h;
    const Pid pid = h.kernel.createProcess("f");
    const Tid tid = h.kernel.spawnThread(
        pid, [](Kernel &k, Tid t) -> Task { co_await k.sleepFor(t, 10); });
    EXPECT_FALSE(h.kernel.threadFinished(tid));
    h.sim.runFor(sim::milliseconds(1));
    EXPECT_TRUE(h.kernel.threadFinished(tid));
}

// --------------------------------------------------------------- notifier

TEST(NotifierTest, WaitersWakeFifoAndFireFutex)
{
    Harness h;
    const Pid pid = h.kernel.createProcess("n");
    kernel::Notifier notifier(h.kernel);
    std::vector<int> order;

    for (int i = 0; i < 2; ++i) {
        h.kernel.spawnThread(
            pid, [&notifier, &order, i](Kernel &, Tid tid) -> Task {
                co_await notifier.wait(tid);
                order.push_back(i);
            });
    }
    h.sim.runFor(sim::microseconds(10));
    EXPECT_EQ(notifier.waiters(), 2u);
    notifier.notifyOne();
    h.sim.runFor(sim::microseconds(10));
    EXPECT_EQ(order, (std::vector<int>{0}));
    notifier.notifyOne();
    h.sim.runFor(sim::microseconds(10));
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    EXPECT_FALSE(notifier.notifyOne()); // nobody left
    EXPECT_EQ(h.log.countOf(Syscall::Futex, TracepointId::SysExit), 2u);
}

// ------------------------------------------------------------ system spec

TEST(SystemSpecTest, TableOneValues)
{
    const SystemSpec amd = amdEpyc7302();
    EXPECT_EQ(amd.sockets, 2u);
    EXPECT_EQ(amd.coresPerSocket, 16u);
    EXPECT_EQ(amd.threadsPerCore, 2u);
    EXPECT_EQ(amd.logicalCpus(), 64u);
    const CpuConfig cfg = amd.toCpuConfig();
    EXPECT_GT(cfg.cores, 32u); // SMT bonus above physical cores
    EXPECT_LT(cfg.cores, 64u); // but below logical count
    EXPECT_DOUBLE_EQ(cfg.speed, 1.0);

    const SystemSpec intel = intelXeonE52620();
    EXPECT_EQ(intel.logicalCpus(), 16u);
    EXPECT_EQ(intel.toCpuConfig().cores, 16u);

    EXPECT_NE(formatSystemSpec(amd).find("EPYC"), std::string::npos);
}

} // namespace
} // namespace reqobs::kernel
