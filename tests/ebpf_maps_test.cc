/**
 * @file
 * Unit tests for eBPF maps: hash semantics (flags, capacity, pointer
 * stability), array bounds, and the ring buffer.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "ebpf/maps.hh"

namespace reqobs::ebpf {
namespace {

TEST(HashMapTest, UpdateLookupDelete)
{
    HashMap m(8, 8, 16);
    const std::uint64_t key = 42, value = 1234;
    EXPECT_EQ(m.put(key, value), 0);
    std::uint64_t out = 0;
    EXPECT_TRUE(m.get(key, out));
    EXPECT_EQ(out, value);
    EXPECT_EQ(m.remove(key), 0);
    EXPECT_FALSE(m.get(key, out));
    EXPECT_EQ(m.remove(key), -2); // ENOENT
}

TEST(HashMapTest, UpdateFlagsSemantics)
{
    HashMap m(8, 8, 16);
    const std::uint64_t k = 1;
    EXPECT_EQ(m.put(k, std::uint64_t{10}, BPF_EXIST), -2);  // no entry yet
    EXPECT_EQ(m.put(k, std::uint64_t{10}, BPF_NOEXIST), 0); // create
    EXPECT_EQ(m.put(k, std::uint64_t{20}, BPF_NOEXIST), -17); // EEXIST
    EXPECT_EQ(m.put(k, std::uint64_t{20}, BPF_EXIST), 0);
    std::uint64_t out = 0;
    m.get(k, out);
    EXPECT_EQ(out, 20u);
}

TEST(HashMapTest, CapacityEnforced)
{
    HashMap m(8, 8, 4);
    for (std::uint64_t k = 0; k < 4; ++k)
        EXPECT_EQ(m.put(k, k), 0);
    EXPECT_EQ(m.put(std::uint64_t{99}, std::uint64_t{1}), -7); // E2BIG
    // Updating an existing key still works at capacity.
    EXPECT_EQ(m.put(std::uint64_t{0}, std::uint64_t{5}), 0);
    EXPECT_EQ(m.size(), 4u);
}

TEST(HashMapTest, ValuePointersStableAcrossInserts)
{
    HashMap m(8, 8, 4096);
    const std::uint64_t k0 = 7;
    m.put(k0, std::uint64_t{111});
    std::uint8_t *p =
        m.lookup(reinterpret_cast<const std::uint8_t *>(&k0));
    ASSERT_NE(p, nullptr);
    // Force rehash churn; the held pointer must stay valid (kernel maps
    // guarantee this to in-flight programs).
    for (std::uint64_t k = 100; k < 3000; ++k)
        m.put(k, k);
    std::uint64_t v = 0;
    std::memcpy(&v, p, 8);
    EXPECT_EQ(v, 111u);
}

TEST(HashMapTest, ForEachVisitsEverything)
{
    HashMap m(8, 8, 16);
    for (std::uint64_t k = 0; k < 5; ++k)
        m.put(k, k * 10);
    std::uint64_t sum = 0;
    m.forEach([&](const std::uint8_t *, const std::uint8_t *v) {
        std::uint64_t x;
        std::memcpy(&x, v, 8);
        sum += x;
    });
    EXPECT_EQ(sum, 0u + 10 + 20 + 30 + 40);
}

TEST(ArrayMapTest, SlotsPrezeroedAndBounded)
{
    ArrayMap m(8, 4);
    EXPECT_EQ(m.at<std::uint64_t>(0), 0u);
    EXPECT_EQ(m.put(std::uint32_t{2}, std::uint64_t{77}), 0);
    EXPECT_EQ(m.at<std::uint64_t>(2), 77u);
    // Out of range.
    const std::uint32_t big = 10;
    EXPECT_EQ(m.lookup(reinterpret_cast<const std::uint8_t *>(&big)),
              nullptr);
    EXPECT_EQ(m.put(big, std::uint64_t{1}), -7);
    // Arrays cannot delete.
    EXPECT_EQ(m.remove(std::uint32_t{0}), -22);
}

TEST(ArrayMapTest, InPlaceMutationThroughLookup)
{
    ArrayMap m(8, 1);
    const std::uint32_t idx = 0;
    std::uint8_t *p = m.lookup(reinterpret_cast<const std::uint8_t *>(&idx));
    ASSERT_NE(p, nullptr);
    std::uint64_t v = 123;
    std::memcpy(p, &v, 8);
    EXPECT_EQ(m.at<std::uint64_t>(0), 123u);
}

TEST(RingBufTest, OutputAndConsume)
{
    RingBufMap rb(1024);
    const char msg[] = "hello";
    EXPECT_EQ(rb.output(reinterpret_cast<const std::uint8_t *>(msg),
                        sizeof(msg)),
              0);
    EXPECT_EQ(rb.size(), 1u);
    std::vector<std::string> got;
    rb.consume([&](const std::uint8_t *d, std::uint32_t len) {
        got.emplace_back(reinterpret_cast<const char *>(d), len);
    });
    ASSERT_EQ(got.size(), 1u);
    EXPECT_STREQ(got[0].c_str(), "hello");
    EXPECT_EQ(rb.size(), 0u);
    EXPECT_EQ(rb.bytesQueued(), 0u);
}

TEST(RingBufTest, DropsWhenFull)
{
    RingBufMap rb(64);
    std::uint8_t data[40] = {};
    EXPECT_EQ(rb.output(data, 40), 0);
    EXPECT_EQ(rb.output(data, 40), -28); // ENOSPC
    EXPECT_EQ(rb.drops(), 1u);
    rb.consume([](const std::uint8_t *, std::uint32_t) {});
    EXPECT_EQ(rb.output(data, 40), 0); // space reclaimed
}

TEST(RingBufTest, RejectsInvalidSizes)
{
    RingBufMap rb(64);
    std::uint8_t b = 0;
    EXPECT_EQ(rb.output(&b, 0), -22);
    EXPECT_EQ(rb.output(&b, 65), -22);
    // Ring buffers have no lookup/update/delete.
    EXPECT_EQ(rb.lookup(&b), nullptr);
    EXPECT_EQ(rb.update(&b, &b, 0), -22);
    EXPECT_EQ(rb.erase(&b), -22);
}

TEST(MapDeathTest, TypedAccessChecksSizes)
{
    HashMap m(8, 8, 4);
    std::uint32_t small_key = 1;
    std::uint64_t out;
    EXPECT_DEATH(m.get(small_key, out), "key size");
}

} // namespace
} // namespace reqobs::ebpf
