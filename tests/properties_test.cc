/**
 * @file
 * Cross-module property tests, parameterized over seeds:
 *  - GPS CPU work conservation and completion-order sanity;
 *  - TCP never reorders a connection, under any impairment;
 *  - two co-located applications are observed independently (tgid
 *    filtering), with no metric cross-talk;
 *  - agent windows accumulate until minWindowSyscalls (low-rate apps);
 *  - experiment determinism across module boundaries.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "client/load_generator.hh"
#include "core/agent.hh"
#include "core/experiment.hh"
#include "core/profile.hh"
#include "kernel/kernel.hh"
#include "net/tcp.hh"
#include "workload/server_app.hh"

namespace reqobs {
namespace {

// ----------------------------------------------------- CPU conservation

class CpuPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(CpuPropertyTest, GpsConservesWork)
{
    // Random jobs with jitter disabled: total served CPU time must equal
    // the total submitted demand, and the busy period must be at least
    // demand/cores.
    sim::Simulation sim(GetParam());
    kernel::CpuConfig cfg;
    cfg.cores = 4;
    cfg.jitterSigma = 0.0;
    kernel::CpuModel cpu(sim, cfg);
    sim::Rng rng(GetParam());

    double total_demand = 0.0;
    int completed = 0;
    const int jobs = 50;
    for (int i = 0; i < jobs; ++i) {
        const sim::Tick d =
            1000 + static_cast<sim::Tick>(rng.uniformInt(100000));
        total_demand += static_cast<double>(d);
        sim.schedule(rng.uniformInt(50000), [&cpu, &completed, d] {
            cpu.submit(d, [&completed] { ++completed; });
        });
    }
    sim.run();
    EXPECT_EQ(completed, jobs);
    EXPECT_NEAR(cpu.servedTicks(), total_demand, 0.01 * total_demand);
    EXPECT_GE(static_cast<double>(sim.now()),
              total_demand / cfg.cores * 0.99);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpuPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

// ------------------------------------------------------- TCP ordering

struct TcpCase
{
    std::uint64_t seed;
    double loss;
    sim::Tick jitter;
};

class TcpOrderPropertyTest : public ::testing::TestWithParam<TcpCase>
{};

TEST_P(TcpOrderPropertyTest, NeverReordersUnderAnyImpairment)
{
    const TcpCase &c = GetParam();
    sim::Simulation sim(c.seed);
    net::NetemConfig netem;
    netem.delay = sim::milliseconds(5);
    netem.jitter = c.jitter;
    netem.lossProbability = c.loss;
    netem.lossCorrelation = c.loss > 0 ? 0.5 : 0.0;
    net::TcpConfig tcp;
    std::vector<std::uint64_t> order;
    net::TcpPipe pipe(sim, netem, tcp, sim.forkRng(),
                      [&](kernel::Message &&m) {
                          order.push_back(m.requestId);
                      });
    sim::Rng rng(c.seed);
    for (std::uint64_t i = 0; i < 300; ++i) {
        kernel::Message m;
        m.requestId = i;
        m.bytes = 1 + static_cast<std::uint32_t>(rng.uniformInt(4096));
        pipe.send(std::move(m));
        sim.runFor(rng.uniformInt(2'000'000));
    }
    sim.runFor(sim::seconds(600));
    ASSERT_EQ(order.size(), 300u);
    for (std::uint64_t i = 0; i < 300; ++i)
        ASSERT_EQ(order[i], i);
}

INSTANTIATE_TEST_SUITE_P(
    Impairments, TcpOrderPropertyTest,
    ::testing::Values(TcpCase{1, 0.0, 0}, TcpCase{2, 0.0, 2'000'000},
                      TcpCase{3, 0.02, 0}, TcpCase{4, 0.1, 2'000'000},
                      TcpCase{5, 0.3, 5'000'000}));

// -------------------------------------------- co-located applications

TEST(IsolationTest, TwoAgentsObserveTheirOwnAppOnly)
{
    sim::Simulation sim(71);
    kernel::Kernel kernel(sim);

    auto make_wl = [](const char *base, double rps) {
        auto wl = workload::workloadByName(base);
        wl.saturationRps = rps;
        wl.connections = 8;
        return wl;
    };
    // Same machine, two very different services.
    auto wl_a = make_wl("data-caching", 4000.0);
    auto wl_b = make_wl("img-dnn", 400.0);
    workload::ServerApp app_a(kernel, wl_a);
    workload::ServerApp app_b(kernel, wl_b);

    client::ClientConfig cc_a;
    cc_a.offeredRps = 2000.0;
    cc_a.warmup = 0;
    client::ClientConfig cc_b = cc_a;
    cc_b.offeredRps = 200.0;
    client::LoadGenerator gen_a(sim, app_a, net::NetemConfig{},
                                net::TcpConfig{}, cc_a);
    client::LoadGenerator gen_b(sim, app_b, net::NetemConfig{},
                                net::TcpConfig{}, cc_b);

    core::ObservabilityAgent agent_a(kernel, app_a.frontPid(),
                                     core::profileFor(wl_a));
    core::ObservabilityAgent agent_b(kernel, app_b.frontPid(),
                                     core::profileFor(wl_b));

    app_a.start();
    app_b.start();
    agent_a.start();
    agent_b.start();
    gen_a.start();
    gen_b.start();
    sim.runFor(sim::seconds(4));

    // Each agent's Eq. 1 tracks its own application's rate, not the
    // machine-wide syscall soup.
    EXPECT_NEAR(agent_a.overallObservedRps(), 2000.0, 150.0);
    EXPECT_NEAR(agent_b.overallObservedRps(), 200.0, 20.0);
    agent_a.stop();
    agent_b.stop();
    gen_a.stop();
    gen_b.stop();
}

// ---------------------------------------------- agent window behaviour

TEST(AgentWindowTest, LowRateWorkloadsAccumulateUntilMinWindow)
{
    sim::Simulation sim(5);
    kernel::Kernel kernel(sim);
    auto wl = workload::workloadByName("data-caching");
    wl.saturationRps = 1000.0;
    wl.connections = 4;
    workload::ServerApp app(kernel, wl);
    client::ClientConfig cc;
    cc.offeredRps = 100.0; // ~10 sends per 100ms sample period
    cc.warmup = 0;
    client::LoadGenerator gen(sim, app, net::NetemConfig{},
                              net::TcpConfig{}, cc);
    core::AgentConfig acfg;
    acfg.samplePeriod = sim::milliseconds(100);
    acfg.minWindowSyscalls = 256;
    core::ObservabilityAgent agent(kernel, app.frontPid(),
                                   core::profileFor(wl), acfg);
    app.start();
    agent.start();
    gen.start();
    sim.runFor(sim::seconds(10));

    // ~1000 sends over the run, min window 256 -> at most 4 samples,
    // each with >= 256 deltas; never a tiny noisy window.
    ASSERT_FALSE(agent.samples().empty());
    EXPECT_LE(agent.samples().size(), 4u);
    for (const auto &s : agent.samples())
        EXPECT_GE(s.send.count, 256u);
    agent.stop();
    gen.stop();
}

// ------------------------------------------------------- determinism

class DeterminismTest : public ::testing::TestWithParam<const char *>
{};

TEST_P(DeterminismTest, IdenticalSeedsIdenticalRuns)
{
    auto run = [&] {
        core::ExperimentConfig cfg;
        cfg.workload = workload::workloadByName(GetParam());
        cfg.workload.saturationRps =
            std::min(cfg.workload.saturationRps, 3000.0);
        cfg.offeredRps = 0.8 * cfg.workload.saturationRps;
        cfg.requests = 4000;
        cfg.seed = 1234;
        return core::runExperiment(cfg);
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.syscalls, b.syscalls);
    EXPECT_EQ(a.probeInsns, b.probeInsns);
    EXPECT_DOUBLE_EQ(a.observedRps, b.observedRps);
    EXPECT_DOUBLE_EQ(a.sendVarNs2, b.sendVarNs2);
    EXPECT_EQ(a.p99Ns, b.p99Ns);
    EXPECT_EQ(a.samples.size(), b.samples.size());
}

INSTANTIATE_TEST_SUITE_P(Workloads, DeterminismTest,
                         ::testing::Values("data-caching", "moses",
                                           "web-search", "triton-grpc",
                                           "data-caching-iouring"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (auto &ch : n)
                                 if (ch == '-')
                                     ch = '_';
                             return n;
                         });

} // namespace
} // namespace reqobs
