/**
 * @file
 * Differential test between the three eBPF execution engines: the
 * reference interpreter (decode-per-execution), the translation cache
 * (pre-decoded at attach time) and the native compiler
 * (shape-specialised C++ kernels). The engines must be observationally
 * identical for every verified program: same r0, same
 * retired-instruction counts (the probe cost model feeds on them), same
 * map contents, same ring-buffer payloads, same failure counters.
 *
 * Two angles:
 *  - a fuzz corpus: randomly generated programs that pass the verifier
 *    are executed through both VM engines with separate map instances,
 *    and the native compiler must reject them gracefully (it only
 *    accepts byte-exact library probes — anything else falls back to
 *    the translated form at runtime);
 *  - the probe library end to end: three simulated kernels, one per
 *    engine, fed an identical syscall event stream through the full
 *    library — Listing-1 duration pair (plain and guarded), delta and
 *    tenant-delta probes, tenant duration pair, heavy-hitter sketch,
 *    and stream probes — including clock-inverted and negative-ret
 *    events so the guarded skip paths execute.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ebpf/assembler.hh"
#include "ebpf/helpers.hh"
#include "ebpf/maps.hh"
#include "ebpf/native.hh"
#include "ebpf/probes.hh"
#include "ebpf/runtime.hh"
#include "ebpf/translate.hh"
#include "ebpf/verifier.hh"
#include "ebpf/vm.hh"
#include "fuzz_programs.hh"
#include "kernel/kernel.hh"
#include "sim/rng.hh"
#include "sim/simulation.hh"

namespace reqobs::ebpf {
namespace {

/** Full content snapshot of a hash map, in key order. */
std::map<std::string, std::string>
hashSnapshot(const HashMap &m)
{
    std::map<std::string, std::string> out;
    const std::uint32_t ks = m.keySize(), vs = m.valueSize();
    m.forEach([&](const std::uint8_t *k, const std::uint8_t *v) {
        out.emplace(std::string(reinterpret_cast<const char *>(k), ks),
                    std::string(reinterpret_cast<const char *>(v), vs));
    });
    return out;
}

/** Full content snapshot of an array map. */
std::vector<std::string>
arraySnapshot(ArrayMap &m)
{
    std::vector<std::string> out;
    for (std::uint32_t i = 0; i < m.maxEntries(); ++i) {
        const std::uint8_t *v =
            m.lookup(reinterpret_cast<const std::uint8_t *>(&i));
        out.emplace_back(reinterpret_cast<const char *>(v), m.valueSize());
    }
    return out;
}

/**
 * Slot-exact snapshot of a sketch, in stage-major slot order. Eviction
 * decisions depend on resident counts, so the slightest divergence in
 * update order or arithmetic between the engines shows up here.
 */
std::vector<std::pair<std::string, std::string>>
sketchSnapshot(const SketchMap &m)
{
    std::vector<std::pair<std::string, std::string>> out;
    const std::uint32_t ks = m.keySize();
    m.forEach([&](const std::uint8_t *k, const std::uint8_t *c) {
        out.emplace_back(std::string(reinterpret_cast<const char *>(k), ks),
                         std::string(reinterpret_cast<const char *>(c), 8));
    });
    return out;
}

class EngineDiffFuzzTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(EngineDiffFuzzTest, VerifiedProgramsAgreeBitForBit)
{
    sim::Rng rng(GetParam());

    // Each engine gets its own map instances so divergence in map
    // contents is attributable to the engine alone.
    auto hashA = std::make_unique<HashMap>(8, 8, 64);
    auto arrayA = std::make_unique<ArrayMap>(32, 4);
    auto hashB = std::make_unique<HashMap>(8, 8, 64);
    auto arrayB = std::make_unique<ArrayMap>(32, 4);
    // Tiny sketch (2 stages x 4 slots) so fuzzed updates churn the
    // eviction/carry path, not just the resident-increment fast path.
    auto sketchA = std::make_unique<SketchMap>(8, 2, 4);
    auto sketchB = std::make_unique<SketchMap>(8, 2, 4);

    Vm vmA, vmB;
    int accepted = 0;
    for (int trial = 0; trial < 400; ++trial) {
        ProgramBuilder b;
        FuzzGenerator gen(rng.next(), /*sketch_fd=*/5);
        const int len = 3 + static_cast<int>(rng.uniformInt(24));
        gen.emitProgram(b, len);
        for (int l = 0; l < 4; ++l)
            b.label("L" + std::to_string(l));
        b.movImm(R0, 0).exit_();

        ProgramSpec specA;
        specA.name = "diff";
        specA.insns = b.build();
        specA.maps[3] = hashA.get();
        specA.maps[4] = arrayA.get();
        specA.maps[5] = sketchA.get();

        ProgramSpec specB = specA;
        specB.maps[3] = hashB.get();
        specB.maps[4] = arrayB.get();
        specB.maps[5] = sketchB.get();

        const VerifyResult vr = verify(specA);
        if (!vr.ok)
            continue;
        ++accepted;

        // The native compiler accepts a program only when re-emitting
        // its extracted parameters reproduces the instruction stream
        // byte for byte — a random program is structurally rejected
        // (and at runtime would execute through the translated form).
        NativeProgram np;
        EXPECT_FALSE(compileNative(specA, &np))
            << disassemble(specA.insns);
        EXPECT_EQ(np.fn, nullptr);

        TranslatedProgram xprog;
        std::string xerr;
        ASSERT_TRUE(translate(specB, vr.maxStackDepth, &xprog, &xerr))
            << xerr << "\n"
            << disassemble(specB.insns);

        for (int c = 0; c < 3; ++c) {
            TraceCtx ctx{};
            if (c == 1) {
                ctx.id = ~0ull;
                ctx.pidTgid = ~0ull;
                ctx.ts = ~0ull;
                ctx.ret = -1;
            } else if (c == 2) {
                ctx.id = rng.next();
                ctx.pidTgid = rng.next();
                ctx.ts = rng.next();
                ctx.ret = static_cast<std::int64_t>(rng.next());
            }
            const std::uint64_t now = rng.next();
            const std::uint64_t pt = rng.next();

            // Same-seeded helper RNG streams so kPrandom agrees.
            sim::Rng rngA(trial), rngB(trial);
            ExecEnv envA;
            envA.nowNs = now;
            envA.pidTgid = pt;
            envA.rng = &rngA;
            ExecEnv envB = envA;
            envB.rng = &rngB;

            TraceCtx ctxB = ctx;
            const RunResult ra =
                vmA.run(specA, reinterpret_cast<std::uint8_t *>(&ctx),
                        sizeof(ctx), envA);
            const RunResult rb =
                vmB.run(xprog, reinterpret_cast<std::uint8_t *>(&ctxB),
                        sizeof(ctxB), envB);

            const std::string dis = disassemble(specA.insns);
            ASSERT_FALSE(ra.aborted) << ra.error << "\n" << dis;
            ASSERT_FALSE(rb.aborted) << rb.error << "\n" << dis;
            ASSERT_EQ(ra.r0, rb.r0) << dis;
            ASSERT_EQ(ra.insns, rb.insns) << dis;
            ASSERT_EQ(ra.mapUpdateFails, rb.mapUpdateFails) << dis;
            ASSERT_EQ(ra.ringbufDrops, rb.ringbufDrops) << dis;
        }

        ASSERT_EQ(hashSnapshot(*hashA), hashSnapshot(*hashB))
            << disassemble(specA.insns);
        ASSERT_EQ(arraySnapshot(*arrayA), arraySnapshot(*arrayB))
            << disassemble(specA.insns);
        ASSERT_EQ(sketchSnapshot(*sketchA), sketchSnapshot(*sketchB))
            << disassemble(specA.insns);
    }
    EXPECT_GT(accepted, 20) << "generator too hostile; tune the mix";
    EXPECT_EQ(vmA.totalInsns(), vmB.totalInsns());
    EXPECT_EQ(sketchA->evictions(), sketchB->evictions());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineDiffFuzzTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

/** One engine's full probe-library stack fed by raw syscall events. */
struct ProbeStack
{
    sim::Simulation sim{1};
    std::unique_ptr<kernel::Kernel> kernel;
    std::unique_ptr<EbpfRuntime> rt;
    probes::DurationMaps dur;
    probes::DurationMaps durGuarded;
    probes::DurationMaps durTenant;
    probes::DeltaMaps delta;
    probes::DeltaMaps deltaTenant;
    probes::StreamMaps stream;
    int sketchFd = -1;

    explicit ProbeStack(ExecEngine engine)
    {
        kernel = std::make_unique<kernel::Kernel>(sim);
        RuntimeConfig rc;
        rc.engine = engine;
        rt = std::make_unique<EbpfRuntime>(*kernel, rc);
        probes::TenantSet tenants;
        tenants.tgids = {1000, 2000};
        tenants.pollSyscalls = {232, 232};
        dur = probes::createDurationMaps(*rt, "diff");
        durGuarded = probes::createDurationMaps(*rt, "diffg");
        durTenant = probes::createTenantDurationMaps(*rt, 2, "difft");
        delta = probes::createDeltaMaps(*rt, "diff");
        deltaTenant = probes::createTenantDeltaMaps(*rt, 2, "difftd");
        stream = probes::createStreamMaps(*rt, 1 << 14, "diff");
        // Undersized sketch so both tenants fight over slots and the
        // engines must agree on every eviction.
        sketchFd = probes::createTenantSketchMap(*rt, 2, 2, "diff");
        attach(probes::buildDurationEnter(*rt, 1000, 232, dur),
               kernel::TracepointId::SysEnter);
        attach(probes::buildDurationExit(*rt, 1000, 232, dur),
               kernel::TracepointId::SysExit);
        // Guarded pair on the other tgid: the clock-inverted events in
        // the stream exercise its skip path.
        attach(probes::buildDurationEnter(*rt, 2000, 232, durGuarded),
               kernel::TracepointId::SysEnter);
        attach(probes::buildDurationExit(*rt, 2000, 232, durGuarded,
                                         probes::kDeltaShift, true),
               kernel::TracepointId::SysExit);
        attach(probes::buildTenantDurationEnter(*rt, tenants, durTenant),
               kernel::TracepointId::SysEnter);
        attach(probes::buildTenantDurationExit(*rt, tenants, durTenant,
                                               probes::kDeltaShift, true),
               kernel::TracepointId::SysExit);
        attach(probes::buildDeltaExit(*rt, 1000, {44}, delta),
               kernel::TracepointId::SysExit);
        attach(probes::buildTenantDeltaExit(*rt, tenants, {44, 0},
                                            deltaTenant),
               kernel::TracepointId::SysExit);
        attach(probes::buildStreamProbe(*rt, 1000, false, stream),
               kernel::TracepointId::SysEnter);
        attach(probes::buildStreamProbe(*rt, 1000, true, stream),
               kernel::TracepointId::SysExit);
        attach(probes::buildTenantHeavyHitter(*rt, tenants, {44}, sketchFd),
               kernel::TracepointId::SysExit);
    }

    void
    attach(ProgramSpec spec, kernel::TracepointId point)
    {
        const auto vr = rt->loadAndAttach(std::move(spec), point);
        ASSERT_TRUE(vr.ok) << vr.error;
    }

    void fire(const kernel::RawSyscallEvent &ev)
    {
        kernel->tracepoints().fire(ev);
    }
};

/** Every probe-visible observation of @p a must equal @p b's. */
void
expectStacksEqual(ProbeStack &a, ProbeStack &b, const char *label)
{
    SCOPED_TRACE(label);

    // Aggregate accounting must agree exactly: the probe cost model is
    // driven by the retired-instruction count.
    EXPECT_EQ(a.rt->eventsProcessed(), b.rt->eventsProcessed());
    EXPECT_EQ(a.rt->insnsInterpreted(), b.rt->insnsInterpreted());
    EXPECT_EQ(a.rt->totalProbeCost(), b.rt->totalProbeCost());
    EXPECT_EQ(a.rt->mapUpdateFails(), b.rt->mapUpdateFails());
    EXPECT_EQ(a.rt->ringbufDrops(), b.rt->ringbufDrops());

    const auto pa = a.rt->probeCounters();
    const auto pb = b.rt->probeCounters();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
        EXPECT_EQ(pa[i].name, pb[i].name);
        EXPECT_EQ(pa[i].events, pb[i].events) << pa[i].name;
        EXPECT_EQ(pa[i].mapUpdateFails, pb[i].mapUpdateFails) << pa[i].name;
        EXPECT_EQ(pa[i].ringbufDrops, pb[i].ringbufDrops) << pa[i].name;
    }

    // Map contents byte for byte, every probe family.
    EXPECT_EQ(hashSnapshot(a.rt->hashAt(a.dur.startFd)),
              hashSnapshot(b.rt->hashAt(b.dur.startFd)));
    EXPECT_EQ(arraySnapshot(a.rt->arrayAt(a.dur.statsFd)),
              arraySnapshot(b.rt->arrayAt(b.dur.statsFd)));
    EXPECT_EQ(hashSnapshot(a.rt->hashAt(a.durGuarded.startFd)),
              hashSnapshot(b.rt->hashAt(b.durGuarded.startFd)));
    EXPECT_EQ(arraySnapshot(a.rt->arrayAt(a.durGuarded.statsFd)),
              arraySnapshot(b.rt->arrayAt(b.durGuarded.statsFd)));
    EXPECT_EQ(hashSnapshot(a.rt->hashAt(a.durTenant.startFd)),
              hashSnapshot(b.rt->hashAt(b.durTenant.startFd)));
    EXPECT_EQ(arraySnapshot(a.rt->arrayAt(a.durTenant.statsFd)),
              arraySnapshot(b.rt->arrayAt(b.durTenant.statsFd)));
    EXPECT_EQ(arraySnapshot(a.rt->arrayAt(a.delta.statsFd)),
              arraySnapshot(b.rt->arrayAt(b.delta.statsFd)));
    EXPECT_EQ(arraySnapshot(a.rt->arrayAt(a.deltaTenant.statsFd)),
              arraySnapshot(b.rt->arrayAt(b.deltaTenant.statsFd)));

    // Heavy-hitter sketch: slot-exact contents, same eviction count,
    // same top-K ranking.
    SketchMap &ska = a.rt->sketchAt(a.sketchFd);
    SketchMap &skb = b.rt->sketchAt(b.sketchFd);
    EXPECT_EQ(sketchSnapshot(ska), sketchSnapshot(skb));
    EXPECT_EQ(ska.evictions(), skb.evictions());
    EXPECT_EQ(ska.topK(4), skb.topK(4));
    EXPECT_GT(ska.topK(4).size(), 0u);

    EXPECT_EQ(a.rt->ringbufAt(a.stream.ringFd).drops(),
              b.rt->ringbufAt(b.stream.ringFd).drops());
}

/** Drain a stack's stream ring into a payload sequence (destructive —
 *  call once per stack, then compare the sequences). */
std::vector<std::string>
drainRing(ProbeStack &s)
{
    std::vector<std::string> rec;
    s.rt->ringbufAt(s.stream.ringFd)
        .consume([&](const std::uint8_t *d, std::uint32_t n) {
            rec.emplace_back(reinterpret_cast<const char *>(d), n);
        });
    return rec;
}

TEST(EngineDiffProbeLibrary, IdenticalEventStreamIdenticalObservations)
{
    ProbeStack ref(ExecEngine::Reference);
    ProbeStack xlt(ExecEngine::Translated);
    ProbeStack nat(ExecEngine::Native);

    // Every library probe must have native-compiled in the native
    // stack — a silent fallback here would make this test vacuous for
    // the native engine.
    EXPECT_EQ(nat.rt->nativePrograms(), nat.rt->loadedPrograms());

    // A deterministic mixed stream: the traced tgids and an untraced
    // one, the traced syscall, the delta family and an ignored syscall,
    // occasional failures, and occasional clock-inverted exits (the
    // guarded probes skip those, the unguarded ones wrap). Small ring
    // capacity makes all stacks hit the drop path at the same events.
    std::uint64_t ts = 1000;
    for (int i = 0; i < 20000; ++i) {
        kernel::RawSyscallEvent ev;
        ev.syscall = (i % 4 == 0) ? 232 : (i % 4 == 1 ? 44 : 0);
        ev.pidTgid = kernel::makePidTgid(
            i % 5 == 4 ? 7777 : (i % 3 == 0 ? 1000 : 2000), 1 + (i % 2));
        ev.ret = (i % 7 == 0) ? -4 : 100;

        ev.point = kernel::TracepointId::SysEnter;
        const std::uint64_t enter_ts = ts += 350;
        ev.timestamp = static_cast<sim::Tick>(enter_ts);
        ref.fire(ev);
        xlt.fire(ev);
        nat.fire(ev);

        ev.point = kernel::TracepointId::SysExit;
        ts += 650;
        ev.timestamp = static_cast<sim::Tick>(
            i % 13 == 0 ? enter_ts - 900 : ts);
        ref.fire(ev);
        xlt.fire(ev);
        nat.fire(ev);
    }

    expectStacksEqual(ref, xlt, "reference vs translated");
    expectStacksEqual(ref, nat, "reference vs native");

    // Ring-buffer payload sequences byte for byte.
    const std::vector<std::string> recRef = drainRing(ref);
    EXPECT_GT(recRef.size(), 0u);
    EXPECT_EQ(recRef, drainRing(xlt));
    EXPECT_EQ(recRef, drainRing(nat));
}

/** One engine's runqlat probe pair on its own kernel and maps. */
struct RunqStack
{
    sim::Simulation sim{1};
    std::unique_ptr<kernel::Kernel> kernel;
    std::unique_ptr<EbpfRuntime> rt;
    probes::RunqlatMaps maps;

    explicit RunqStack(ExecEngine engine)
    {
        kernel = std::make_unique<kernel::Kernel>(sim);
        RuntimeConfig rc;
        rc.engine = engine;
        rt = std::make_unique<EbpfRuntime>(*kernel, rc);
        probes::TenantSet tenants;
        tenants.tgids = {1000, 2000};
        tenants.pollSyscalls = {232, 232};
        maps = probes::createRunqlatMaps(*rt, 2, "runq");
        attach(probes::buildRunqlatWakeup(*rt, maps),
               kernel::TracepointId::SchedWakeup);
        attach(probes::buildRunqlatWakeup(*rt, maps),
               kernel::TracepointId::SchedWakeupNew);
        attach(probes::buildRunqlatSwitch(*rt, tenants, maps),
               kernel::TracepointId::SchedSwitch);
    }

    void attach(ProgramSpec spec, kernel::TracepointId point)
    {
        const auto vr = rt->loadAndAttach(std::move(spec), point);
        ASSERT_TRUE(vr.ok) << vr.error;
    }

    void fire(const kernel::RawSyscallEvent &ev)
    {
        kernel->tracepoints().fire(ev);
    }
};

/**
 * The runqlat pair observes identically under all three engines: same
 * per-tenant histograms, same leftover wakeup stamps, same retired-
 * instruction accounting. The synthetic sched stream covers both
 * tenants, an unknown tgid, switches to idle, preempt re-stamps
 * (prev_state == 0), switch-ins with no stamp (the skip path), and
 * waits from sub-bucket-0 up into the saturating top bucket.
 */
TEST(EngineDiffRunqlat, HistogramsAgreeBitForBit)
{
    RunqStack ref(ExecEngine::Reference);
    RunqStack xlt(ExecEngine::Translated);
    RunqStack nat(ExecEngine::Native);
    RunqStack *stacks[] = {&ref, &xlt, &nat};

    // Both runqlat programs must native-compile — a silent fallback
    // would make this test vacuous for the native engine.
    EXPECT_EQ(nat.rt->nativePrograms(), nat.rt->loadedPrograms());

    std::uint64_t ts = 1000;
    for (std::uint64_t i = 0; i < 6000; ++i) {
        const std::uint32_t tid = 1 + (i % 11);
        const std::uint32_t tgid =
            i % 3 == 0 ? 1000u : (i % 3 == 1 ? 2000u : 7777u);

        if (i % 9 != 0) { // every 9th switch-in arrives unstamped
            kernel::RawSyscallEvent w;
            w.point = i % 2 == 0 ? kernel::TracepointId::SchedWakeup
                                 : kernel::TracepointId::SchedWakeupNew;
            w.syscall = tid;
            w.pidTgid = kernel::makePidTgid(tgid, tid);
            w.timestamp = static_cast<sim::Tick>(ts += 170);
            for (auto *s : stacks)
                s->fire(w);
        }

        // Wait spanning the histogram; every 29th lands in the
        // saturating top bucket.
        std::uint64_t wait = 900 + (i % 13) * 5200 + (i % 5) * 260000;
        if (i % 29 == 0)
            wait += 60u * 1000u * 1000u;
        ts += wait;

        kernel::RawSyscallEvent sw;
        sw.point = kernel::TracepointId::SchedSwitch;
        sw.syscall = 1 + ((i + 5) % 11);   // departing task
        sw.ret = i % 4 == 0 ? 0 : 1;       // every 4th is a preempt
        sw.pidTgid = i % 17 == 0
                         ? 0 // switch to idle
                         : kernel::makePidTgid(tgid, tid);
        sw.timestamp = static_cast<sim::Tick>(ts);
        for (auto *s : stacks)
            s->fire(sw);
    }

    for (auto *other : {&xlt, &nat}) {
        for (std::uint32_t slot = 0; slot < 2; ++slot)
            EXPECT_EQ(probes::readRunqlatHist(*ref.rt, ref.maps, slot),
                      probes::readRunqlatHist(*other->rt, other->maps,
                                              slot));
        EXPECT_EQ(hashSnapshot(ref.rt->hashAt(ref.maps.stampFd)),
                  hashSnapshot(other->rt->hashAt(other->maps.stampFd)));
        EXPECT_EQ(ref.rt->eventsProcessed(), other->rt->eventsProcessed());
        EXPECT_EQ(ref.rt->insnsInterpreted(),
                  other->rt->insnsInterpreted());
        EXPECT_EQ(ref.rt->totalProbeCost(), other->rt->totalProbeCost());
        EXPECT_EQ(ref.rt->mapUpdateFails(), other->rt->mapUpdateFails());
    }
    // The stream populated real buckets in both tenant slots.
    for (std::uint32_t slot = 0; slot < 2; ++slot) {
        std::uint64_t total = 0;
        for (std::uint64_t c :
             probes::readRunqlatHist(*ref.rt, ref.maps, slot))
            total += c;
        EXPECT_GT(total, 500u) << "slot " << slot;
    }
}

} // namespace
} // namespace reqobs::ebpf
