/**
 * @file
 * Chaos tests for the supervised agent lifecycle: clean-run identity
 * under supervision, crash/restart recovery with checkpoint + map
 * restore, wipe discontinuity handling, the stall watchdog, the
 * circuit breaker with deterministic jittered backoff, and the
 * loss-aware window correction.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>

#include "client/load_generator.hh"
#include "core/experiment.hh"
#include "core/profile.hh"
#include "core/supervisor.hh"
#include "fault/fault.hh"
#include "workload/server_app.hh"

namespace reqobs {
namespace {

using core::ExperimentConfig;
using core::ExperimentResult;
using core::MetricsSample;

ExperimentConfig
supConfig(const std::string &workload_name, double load_fraction,
          std::uint64_t seed = 17)
{
    ExperimentConfig cfg;
    cfg.workload = workload::workloadByName(workload_name);
    cfg.workload.saturationRps =
        std::min(cfg.workload.saturationRps, 4000.0);
    cfg.offeredRps = load_fraction * cfg.workload.saturationRps;
    cfg.requests = 6000;
    cfg.seed = seed;
    return cfg;
}

/**
 * The acceptance shape for every recovered stream: no window may carry
 * a discontinuity artifact (an outage- or wipe-spanning delta shows up
 * as a wildly inflated mean / variance / count).
 */
void
expectNoCorruptWindows(const ExperimentResult &r)
{
    for (const MetricsSample &s : r.samples) {
        EXPECT_TRUE(std::isfinite(s.send.meanNs));
        EXPECT_GE(s.send.meanNs, 0.0);
        EXPECT_LT(s.send.meanNs, 1e8); // any outage delta would be >=1e8
        EXPECT_TRUE(std::isfinite(s.send.varianceNs2));
        EXPECT_GE(s.send.varianceNs2, 0.0);
        EXPECT_LT(s.send.varianceNs2, 1e18);
        EXPECT_LT(s.send.count, 1000000u); // a u64-wrap delta explodes it
        EXPECT_TRUE(std::isfinite(s.rpsObsv));
        EXPECT_GE(s.rpsObsv, 0.0);
    }
}

TEST(SupervisorTest, SupervisedCleanRunMatchesPlainAgent)
{
    // Supervision without faults must be a pure pass-through: the
    // supervisor's jitter RNG is forked but never drawn from, so the
    // sample stream and every aggregate are bit-identical.
    ExperimentConfig plain = supConfig("data-caching", 0.7);
    ExperimentConfig supervised = plain;
    supervised.supervised = true;
    const auto a = runExperiment(plain);
    const auto b = runExperiment(supervised);

    ASSERT_EQ(a.samples.size(), b.samples.size());
    ASSERT_GT(a.samples.size(), 0u);
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
        EXPECT_EQ(a.samples[i].t, b.samples[i].t);
        EXPECT_EQ(a.samples[i].send.count, b.samples[i].send.count);
        EXPECT_EQ(a.samples[i].send.meanNs, b.samples[i].send.meanNs);
        EXPECT_EQ(a.samples[i].rpsObsv, b.samples[i].rpsObsv);
    }
    EXPECT_EQ(a.observedRps, b.observedRps);
    EXPECT_EQ(a.sendVarNs2, b.sendVarNs2);
    EXPECT_EQ(a.achievedRps, b.achievedRps);
    EXPECT_EQ(b.supervisorStats.crashes, 0u);
    EXPECT_EQ(b.supervisorStats.restarts, 0u);
    EXPECT_EQ(b.supervisorStats.downtime, 0u);
    EXPECT_GT(b.supervisorStats.checkpoints, 0u);
}

TEST(SupervisorTest, CrashRestartRecoversTheMetricStream)
{
    ExperimentConfig cfg = supConfig("data-caching", 0.7);
    cfg.fault.agentCrashMtbf = sim::milliseconds(400);
    cfg.supervisor.restartBackoffInitial = sim::milliseconds(50);
    cfg.supervisor.restartBackoffMax = sim::milliseconds(200);
    const auto r = runExperiment(cfg);

    const auto &ss = r.supervisorStats;
    EXPECT_GT(ss.crashes, 0u);
    EXPECT_GT(ss.restarts, 0u);
    EXPECT_GT(ss.checkpoints, 0u);
    EXPECT_GT(ss.restores, 0u);
    EXPECT_GT(ss.downtime, 0u);
    EXPECT_FALSE(ss.circuitOpen);
    // The stream survives: samples keep coming and the whole-run Eq. 1
    // aggregate still tracks ground truth.
    EXPECT_GT(r.samples.size(), 5u);
    EXPECT_NEAR(r.observedRps, r.achievedRps, 0.10 * r.achievedRps);
    expectNoCorruptWindows(r);
}

TEST(SupervisorTest, CrashyClean400msRunsAreDeterministic)
{
    ExperimentConfig cfg = supConfig("xapian", 0.8, 23);
    cfg.fault.agentCrashMtbf = sim::milliseconds(300);
    const auto a = runExperiment(cfg);
    const auto b = runExperiment(cfg);

    EXPECT_EQ(a.supervisorStats.crashes, b.supervisorStats.crashes);
    EXPECT_EQ(a.supervisorStats.restarts, b.supervisorStats.restarts);
    EXPECT_EQ(a.supervisorStats.downtime, b.supervisorStats.downtime);
    EXPECT_EQ(a.supervisorStats.checkpoints,
              b.supervisorStats.checkpoints);
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
        EXPECT_EQ(a.samples[i].t, b.samples[i].t);
        EXPECT_EQ(a.samples[i].rpsObsv, b.samples[i].rpsObsv);
    }
}

TEST(SupervisorTest, MapWipeTearsOnlyTheTornWindow)
{
    // Every restart loses the kernel map state: each wiped window is
    // torn down (a discontinuity), and no wiped counter reset ever
    // reaches an emitted window as a huge or negative delta.
    ExperimentConfig cfg = supConfig("data-caching", 0.7);
    cfg.fault.agentCrashMtbf = sim::milliseconds(500);
    cfg.fault.mapWipeOnRestartProbability = 1.0;
    cfg.supervisor.restartBackoffInitial = sim::milliseconds(20);
    const auto r = runExperiment(cfg);

    const auto &ss = r.supervisorStats;
    EXPECT_GT(ss.crashes, 0u);
    EXPECT_EQ(ss.mapWipes, ss.restarts);
    EXPECT_GT(r.agentHealth.discontinuities, 0u);
    EXPECT_GT(r.samples.size(), 0u);
    expectNoCorruptWindows(r);
}

TEST(SupervisorTest, WatchdogRecoversAStalledSampler)
{
    ExperimentConfig cfg = supConfig("data-caching", 0.7);
    cfg.requests = 12000; // long enough for stall + detection + recovery
    cfg.fault.samplerStallMtbf = sim::milliseconds(600);
    cfg.supervisor.stallTimeoutTicks = 3;
    cfg.supervisor.restartBackoffInitial = sim::milliseconds(20);
    const auto r = runExperiment(cfg);

    const auto &ss = r.supervisorStats;
    EXPECT_GT(r.faultCounts.samplerStalls, 0u);
    EXPECT_GT(ss.stallsDetected, 0u);
    EXPECT_GT(ss.restarts, 0u);
    // Samples resume after every detected stall.
    EXPECT_GT(r.samples.size(), 3u);
    expectNoCorruptWindows(r);
}

TEST(SupervisorTest, CircuitBreakerOpensAfterRepeatedAttachFailures)
{
    ExperimentConfig cfg = supConfig("data-caching", 0.7);
    cfg.supervised = true;
    cfg.fault.attachFailProbability = 1.0; // every program, every start
    const auto r = runExperiment(cfg);

    const auto &ss = r.supervisorStats;
    EXPECT_TRUE(ss.circuitOpen);
    EXPECT_EQ(ss.failedStarts, cfg.supervisor.circuitBreakerThreshold);
    EXPECT_EQ(ss.restarts, 0u);
    EXPECT_EQ(r.samples.size(), 0u);
    // The observed application never notices its observer giving up.
    EXPECT_GT(r.completed, 4000u);
    EXPECT_GT(r.achievedRps, 0.0);
}

TEST(SupervisorTest, BackoffDelaysAreJitteredExponentialAndDeterministic)
{
    // Drive the supervisor directly so the spacing of the start
    // attempts is visible: with initial 10ms, factor 2 and jitter 0.2,
    // attempt gaps must land in [80%, 120%] of 10, 20, 40, 80 ms.
    auto run = [](std::vector<sim::Tick> &starts) {
        sim::Simulation sim(31);
        fault::FaultPlan plan;
        plan.attachFailProbability = 1.0;
        fault::FaultInjector inj(plan, sim.forkRng());
        kernel::Kernel kernel(sim);
        kernel.setFaultInjector(&inj);
        const auto wl = workload::workloadByName("data-caching");
        workload::ServerApp app(kernel, wl);
        core::AgentConfig ac;
        ac.tolerateAttachFailures = true;
        core::Supervisor sup(kernel, app.frontPid(), core::profileFor(wl),
                             ac, core::SupervisorConfig{}, &inj,
                             sim.forkRng());
        // The app never starts: with every attach failing, the breaker
        // trips on an idle kernel just the same.
        sup.start();
        sim.runFor(sim::seconds(2));
        EXPECT_TRUE(sup.stats().circuitOpen);
        starts = sup.startTimes();
        sup.stop();
    };

    std::vector<sim::Tick> a, b;
    run(a);
    run(b);
    EXPECT_EQ(a, b); // seeded jitter: bit-identical schedules
    ASSERT_EQ(a.size(), 5u);
    const double expected_ms[] = {10.0, 20.0, 40.0, 80.0};
    for (std::size_t i = 0; i + 1 < a.size(); ++i) {
        const double gap_ms =
            static_cast<double>(a[i + 1] - a[i]) / 1e6;
        EXPECT_GE(gap_ms, 0.8 * expected_ms[i]);
        EXPECT_LE(gap_ms, 1.2 * expected_ms[i]);
    }
}

TEST(SupervisorTest, CorrectForLossDebiasesMeanAndVariance)
{
    // Merge-thinning: N observed deltas whose spans absorbed L lost
    // events have mean and variance inflated by k = (N+L)/N.
    core::DeltaWindow w;
    w.count = 900;
    w.meanNs = 1111.1;
    w.varianceNs2 = 5000.0;
    const auto c = core::correctForLoss(w, 100);
    EXPECT_EQ(c.count, 1000u);
    EXPECT_NEAR(c.meanNs, 1000.0, 1.0);
    EXPECT_NEAR(c.varianceNs2, 4500.0, 1.0);

    // Zero loss (or an empty window) is exactly inert.
    const auto same = core::correctForLoss(w, 0);
    EXPECT_EQ(same.count, w.count);
    EXPECT_EQ(same.meanNs, w.meanNs);
    const core::DeltaWindow empty;
    EXPECT_EQ(core::correctForLoss(empty, 50).count, 0u);
}

TEST(SupervisorTest, LossAwareCorrectionRecoversEq1UnderProbeMisses)
{
    // 20% of probe runs are missed by the kernel. The raw pipeline
    // undercounts Eq. 1 roughly in proportion; the loss-aware pipeline
    // scales the missed-run counter by the family's share of arrivals
    // and lands near truth.
    auto arm = [](bool loss_aware) {
        ExperimentConfig cfg = supConfig("data-caching", 0.7);
        cfg.fault.probeMissProbability = 0.2;
        cfg.autoHarden = false;
        cfg.agent.tolerateAttachFailures = true;
        cfg.agent.guardedProbes = true;
        cfg.agent.staleBackoff = true;
        cfg.agent.lossAware = loss_aware;
        return runExperiment(cfg);
    };
    auto windowedErr = [](const ExperimentResult &r) {
        double obs = 0.0;
        int n = 0;
        for (const auto &s : r.samples) {
            if (s.rpsObsv > 0.0) {
                obs += s.rpsObsv;
                ++n;
            }
        }
        EXPECT_GT(n, 0);
        return (obs / n - r.achievedRps) / r.achievedRps;
    };

    const auto raw = arm(false);
    const auto corrected = arm(true);
    EXPECT_GT(raw.agentHealth.probeMisses, 0u);
    EXPECT_EQ(raw.agentHealth.lossCorrectedEvents, 0u);
    EXPECT_GT(corrected.agentHealth.lossCorrectedEvents, 0u);
    EXPECT_LT(windowedErr(raw), -0.10);            // ~-20% undercount
    EXPECT_NEAR(windowedErr(corrected), 0.0, 0.05); // de-biased
    expectNoCorruptWindows(corrected);
}

TEST(SupervisorTest, MapSnapshotRestoreRoundTrips)
{
    // Run a supervised crashy experiment whose every restart restores
    // the previous incarnation's map image; the cumulative kernel
    // counters must keep rising monotonically across all samples.
    ExperimentConfig cfg = supConfig("data-caching", 0.7);
    cfg.fault.agentCrashMtbf = sim::milliseconds(300);
    cfg.supervisor.restartBackoffInitial = sim::milliseconds(20);
    const auto r = runExperiment(cfg);
    ASSERT_GT(r.supervisorStats.restarts, 0u);
    ASSERT_GT(r.samples.size(), 1u);
    // Windowed counts reflect continued accumulation, not resets: the
    // sum of window counts cannot exceed the total syscalls dispatched.
    std::uint64_t total = 0;
    for (const auto &s : r.samples)
        total += s.send.count;
    EXPECT_LE(total, r.syscalls);
    EXPECT_GT(total, 0u);
}

TEST(SupervisorTest, JobsEnvParsingRejectsGarbageAndClampsCeiling)
{
    auto with_env = [](const char *jobs, const char *threads) {
        if (jobs)
            ::setenv("REQOBS_JOBS", jobs, 1);
        else
            ::unsetenv("REQOBS_JOBS");
        if (threads)
            ::setenv("REQOBS_THREADS", threads, 1);
        else
            ::unsetenv("REQOBS_THREADS");
        const unsigned n = core::parallelJobsFromEnv();
        ::unsetenv("REQOBS_JOBS");
        ::unsetenv("REQOBS_THREADS");
        return n;
    };

    EXPECT_EQ(with_env(nullptr, nullptr), 0u);
    EXPECT_EQ(with_env("12", nullptr), 12u);
    EXPECT_EQ(with_env(nullptr, "6"), 6u); // legacy alias honoured
    EXPECT_EQ(with_env("4", "9"), 4u);     // canonical name wins
    EXPECT_EQ(with_env("abc", nullptr), 0u);
    EXPECT_EQ(with_env("12abc", nullptr), 0u);
    EXPECT_EQ(with_env("", nullptr), 0u);
    EXPECT_EQ(with_env("-3", nullptr), 0u);
    EXPECT_EQ(with_env("+7", nullptr), 0u);
    EXPECT_EQ(with_env("999999999999999999999999", nullptr), 0u);
    EXPECT_EQ(with_env("9999", nullptr), 256u); // clamped to the ceiling
}

} // namespace
} // namespace reqobs
