/**
 * @file
 * Chaos tests for the fault-injection framework and the hardened
 * observability pipeline: injector unit behaviour, whole-run determinism
 * under faults, clean-run identity, and survival (no crash, health flags
 * set, finite metrics) under every fault class.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "core/experiment.hh"
#include "fault/fault.hh"
#include "sim/rng.hh"
#include "workload/config.hh"

namespace reqobs {
namespace {

using core::ExperimentConfig;
using core::ExperimentResult;
using core::MetricsSample;
using fault::FaultInjector;
using fault::FaultPlan;

ExperimentConfig
chaosConfig(const std::string &workload_name, double load_fraction,
            std::uint64_t seed = 11)
{
    ExperimentConfig cfg;
    cfg.workload = workload::workloadByName(workload_name);
    cfg.workload.saturationRps =
        std::min(cfg.workload.saturationRps, 4000.0);
    cfg.offeredRps = load_fraction * cfg.workload.saturationRps;
    cfg.requests = 5000;
    cfg.seed = seed;
    return cfg;
}

void
expectFiniteSamples(const ExperimentResult &r)
{
    for (const MetricsSample &s : r.samples) {
        EXPECT_TRUE(std::isfinite(s.rpsObsv));
        EXPECT_GE(s.rpsObsv, 0.0);
        EXPECT_TRUE(std::isfinite(s.send.meanNs));
        EXPECT_TRUE(std::isfinite(s.send.varianceNs2));
        EXPECT_GE(s.send.varianceNs2, 0.0);
        EXPECT_TRUE(std::isfinite(s.recv.meanNs));
        EXPECT_TRUE(std::isfinite(s.recv.varianceNs2));
        EXPECT_TRUE(std::isfinite(s.pollMeanDurNs));
        EXPECT_GE(s.pollMeanDurNs, 0.0);
        EXPECT_TRUE(std::isfinite(s.slack));
        EXPECT_GE(s.slack, 0.0);
        EXPECT_LE(s.slack, 1.0);
    }
    EXPECT_TRUE(std::isfinite(r.observedRps));
    EXPECT_TRUE(std::isfinite(r.sendVarNs2));
    EXPECT_TRUE(std::isfinite(r.pollMeanDurNs));
}

/** A plan with every fault class enabled at noticeable rates. */
FaultPlan
everythingPlan()
{
    FaultPlan p;
    p.eintrProbability = 0.05;
    p.eagainProbability = 0.05;
    p.partialIoProbability = 0.05;
    p.spuriousWakeupProbability = 0.10;
    p.clockJitterNs = sim::microseconds(5);
    p.mapUpdateFailProbability = 0.10;
    p.ringbufDropProbability = 0.10;
    p.linkFlapPeriod = sim::milliseconds(300);
    p.linkFlapDownTime = sim::milliseconds(5);
    p.connResetProbability = 0.01;
    return p;
}

// ------------------------------------------------------------ unit level

TEST(FaultPlanTest, AnyIsFalseByDefaultAndTracksEveryKnob)
{
    EXPECT_FALSE(FaultPlan{}.any());

    auto on = [](auto set) {
        FaultPlan p;
        set(p);
        return p.any();
    };
    EXPECT_TRUE(on([](FaultPlan &p) { p.eintrProbability = 0.1; }));
    EXPECT_TRUE(on([](FaultPlan &p) { p.eagainProbability = 0.1; }));
    EXPECT_TRUE(on([](FaultPlan &p) { p.partialIoProbability = 0.1; }));
    EXPECT_TRUE(
        on([](FaultPlan &p) { p.spuriousWakeupProbability = 0.1; }));
    EXPECT_TRUE(on([](FaultPlan &p) { p.clockJitterNs = 100; }));
    EXPECT_TRUE(on([](FaultPlan &p) { p.mapUpdateFailProbability = 0.1; }));
    EXPECT_TRUE(on([](FaultPlan &p) { p.ringbufDropProbability = 0.1; }));
    EXPECT_TRUE(on([](FaultPlan &p) { p.attachFailProbability = 0.1; }));
    EXPECT_TRUE(on([](FaultPlan &p) {
        p.linkFlapPeriod = 100;
        p.linkFlapDownTime = 10;
    }));
    EXPECT_TRUE(on([](FaultPlan &p) { p.connResetProbability = 0.1; }));
}

TEST(FaultInjectorTest, ZeroProbabilityKnobsNeverConsumeTheStream)
{
    FaultPlan p;
    p.clockJitterNs = 0; // everything off
    FaultInjector inj(p, sim::Rng(42));
    sim::Rng reference(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(inj.injectEintr(0));
        EXPECT_FALSE(inj.injectEagain());
        EXPECT_EQ(inj.partialPieces(4096), 1u);
        EXPECT_FALSE(inj.injectSpuriousWakeup());
        EXPECT_EQ(inj.clockJitter(), 0);
        EXPECT_FALSE(inj.injectMapUpdateFail());
        EXPECT_FALSE(inj.injectRingbufDrop());
        EXPECT_FALSE(inj.injectAttachFail("send.delta_exit"));
        EXPECT_FALSE(inj.injectConnReset());
    }
    // The injector's RNG state is untouched: it still produces the same
    // next value as a freshly-seeded twin.
    FaultInjector probe(p, sim::Rng(42));
    (void)probe;
    EXPECT_EQ(sim::Rng(42).next(), reference.next());
}

TEST(FaultInjectorTest, DecisionSequenceIsDeterministic)
{
    const FaultPlan p = everythingPlan();
    FaultInjector a(p, sim::Rng(7));
    FaultInjector b(p, sim::Rng(7));
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.injectEintr(0), b.injectEintr(0));
        EXPECT_EQ(a.injectEagain(), b.injectEagain());
        EXPECT_EQ(a.partialPieces(4096), b.partialPieces(4096));
        EXPECT_EQ(a.clockJitter(), b.clockJitter());
        EXPECT_EQ(a.injectMapUpdateFail(), b.injectMapUpdateFail());
        EXPECT_EQ(a.injectConnReset(), b.injectConnReset());
    }
}

TEST(FaultInjectorTest, EintrRespectsRestartCap)
{
    FaultPlan p;
    p.eintrProbability = 1.0;
    p.maxEintrRestarts = 2;
    FaultInjector inj(p, sim::Rng(3));
    EXPECT_TRUE(inj.injectEintr(0));
    EXPECT_TRUE(inj.injectEintr(1));
    EXPECT_FALSE(inj.injectEintr(2)); // cap reached: op must complete
    EXPECT_FALSE(inj.injectEintr(5));
}

TEST(FaultInjectorTest, EagainBurstsRunTheirConfiguredLength)
{
    FaultPlan p;
    p.eagainProbability = 1.0;
    p.eagainBurstLength = 3;
    FaultInjector inj(p, sim::Rng(3));
    // p = 1 means a new burst starts as soon as the previous one ends.
    for (int i = 0; i < 9; ++i)
        EXPECT_TRUE(inj.injectEagain());
    EXPECT_EQ(inj.counts().eagain, 9u);
}

TEST(FaultInjectorTest, PartialPiecesBoundedByBytesAndConfig)
{
    FaultPlan p;
    p.partialIoProbability = 1.0;
    p.maxPartialPieces = 4;
    FaultInjector inj(p, sim::Rng(3));
    EXPECT_EQ(inj.partialPieces(1), 1u); // single byte cannot split
    for (int i = 0; i < 200; ++i) {
        const unsigned pieces = inj.partialPieces(4096);
        EXPECT_GE(pieces, 2u);
        EXPECT_LE(pieces, 4u);
    }
    // A 3-byte message splits into at most 3 pieces.
    for (int i = 0; i < 200; ++i)
        EXPECT_LE(inj.partialPieces(3), 3u);
}

TEST(FaultInjectorTest, ClockJitterIsBoundedAndSigned)
{
    FaultPlan p;
    p.clockJitterNs = 500;
    FaultInjector inj(p, sim::Rng(3));
    bool saw_negative = false, saw_positive = false;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t j = inj.clockJitter();
        EXPECT_GE(j, -500);
        EXPECT_LE(j, 500);
        saw_negative |= j < 0;
        saw_positive |= j > 0;
    }
    EXPECT_TRUE(saw_negative);
    EXPECT_TRUE(saw_positive);
}

TEST(FaultInjectorTest, LinkFlapScheduleIsPeriodicWithCleanFirstPeriod)
{
    FaultPlan p;
    p.linkFlapPeriod = sim::milliseconds(100);
    p.linkFlapDownTime = sim::milliseconds(10);
    FaultInjector inj(p, sim::Rng(3));
    // First period is clean so short runs always get a healthy start.
    EXPECT_EQ(inj.linkDownRemaining(0), 0);
    EXPECT_EQ(inj.linkDownRemaining(sim::milliseconds(5)), 0);
    // Down during [100ms, 110ms).
    EXPECT_EQ(inj.linkDownRemaining(sim::milliseconds(100)),
              sim::milliseconds(10));
    EXPECT_EQ(inj.linkDownRemaining(sim::milliseconds(105)),
              sim::milliseconds(5));
    EXPECT_EQ(inj.linkDownRemaining(sim::milliseconds(110)), 0);
    // And again one period later.
    EXPECT_EQ(inj.linkDownRemaining(sim::milliseconds(203)),
              sim::milliseconds(7));
}

TEST(FaultInjectorTest, AttachFailureHonoursTheProgramNameFilter)
{
    FaultPlan p;
    p.attachFailProbability = 1.0;
    p.attachFailPrograms = {"send.delta_exit"};
    FaultInjector inj(p, sim::Rng(3));
    EXPECT_TRUE(inj.injectAttachFail("send.delta_exit"));
    EXPECT_FALSE(inj.injectAttachFail("recv.delta_exit"));
    EXPECT_FALSE(inj.injectAttachFail("poll.duration_exit"));

    FaultPlan all = p;
    all.attachFailPrograms.clear(); // empty filter = every program
    FaultInjector inj2(all, sim::Rng(3));
    EXPECT_TRUE(inj2.injectAttachFail("recv.delta_exit"));
}

// ------------------------------------------------------- whole-run level

TEST(ChaosExperimentTest, CleanRunsCreateNoInjectorSideEffects)
{
    auto cfg = chaosConfig("data-caching", 0.6);
    ASSERT_FALSE(cfg.fault.any());
    const auto r = runExperiment(cfg);
    EXPECT_EQ(r.faultCounts.eintr, 0u);
    EXPECT_EQ(r.faultCounts.eagain, 0u);
    EXPECT_EQ(r.faultCounts.connResets, 0u);
    EXPECT_EQ(r.probeMapUpdateFails, 0u);
    EXPECT_EQ(r.probeRingbufDrops, 0u);
    EXPECT_TRUE(r.agentHealth.sendAttached);
    EXPECT_TRUE(r.agentHealth.recvAttached);
    EXPECT_TRUE(r.agentHealth.pollAttached);
    EXPECT_FALSE(r.agentHealth.degraded());
    EXPECT_EQ(r.agentHealth.backoffFactor, 1u);
}

TEST(ChaosExperimentTest, SameSeedSamePlanIsBitIdentical)
{
    auto make = [] {
        auto cfg = chaosConfig("silo", 0.7, 123);
        cfg.fault = everythingPlan();
        return runExperiment(cfg);
    };
    const auto a = make();
    const auto b = make();

    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.syscalls, b.syscalls);
    EXPECT_EQ(a.p99Ns, b.p99Ns);
    EXPECT_DOUBLE_EQ(a.observedRps, b.observedRps);
    EXPECT_DOUBLE_EQ(a.sendVarNs2, b.sendVarNs2);

    EXPECT_EQ(a.faultCounts.eintr, b.faultCounts.eintr);
    EXPECT_EQ(a.faultCounts.eagain, b.faultCounts.eagain);
    EXPECT_EQ(a.faultCounts.partialOps, b.faultCounts.partialOps);
    EXPECT_EQ(a.faultCounts.spuriousWakeups,
              b.faultCounts.spuriousWakeups);
    EXPECT_EQ(a.faultCounts.mapUpdateFails, b.faultCounts.mapUpdateFails);
    EXPECT_EQ(a.faultCounts.connResets, b.faultCounts.connResets);
    EXPECT_EQ(a.faultCounts.linkFlapHolds, b.faultCounts.linkFlapHolds);

    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
        EXPECT_EQ(a.samples[i].t, b.samples[i].t);
        EXPECT_DOUBLE_EQ(a.samples[i].rpsObsv, b.samples[i].rpsObsv);
        EXPECT_EQ(a.samples[i].send.count, b.samples[i].send.count);
        EXPECT_DOUBLE_EQ(a.samples[i].send.varianceNs2,
                         b.samples[i].send.varianceNs2);
        EXPECT_DOUBLE_EQ(a.samples[i].pollMeanDurNs,
                         b.samples[i].pollMeanDurNs);
    }

    // A different seed produces a different fault sequence.
    auto cfg = chaosConfig("silo", 0.7, 124);
    cfg.fault = everythingPlan();
    const auto c = runExperiment(cfg);
    EXPECT_NE(a.syscalls, c.syscalls);
}

TEST(ChaosExperimentTest, KernelFaultsActuallyFire)
{
    auto cfg = chaosConfig("data-caching", 0.7);
    cfg.fault.eintrProbability = 0.05;
    cfg.fault.eagainProbability = 0.05;
    cfg.fault.partialIoProbability = 0.05;
    cfg.fault.spuriousWakeupProbability = 0.10;
    const auto r = runExperiment(cfg);
    EXPECT_GT(r.faultCounts.eintr, 0u);
    EXPECT_GT(r.faultCounts.eagain, 0u);
    EXPECT_GT(r.faultCounts.partialOps, 0u);
    EXPECT_GT(r.faultCounts.spuriousWakeups, 0u);
    EXPECT_GT(r.completed, 1000u); // the service still works
    expectFiniteSamples(r);
}

TEST(ChaosExperimentTest, SurvivesSendProbeAttachFailure)
{
    auto cfg = chaosConfig("data-caching", 0.6);
    cfg.fault.attachFailProbability = 1.0;
    cfg.fault.attachFailPrograms = {"send.delta_exit"};
    const auto r = runExperiment(cfg);

    EXPECT_FALSE(r.agentHealth.sendAttached);
    EXPECT_TRUE(r.agentHealth.recvAttached);
    EXPECT_TRUE(r.agentHealth.pollAttached);
    EXPECT_TRUE(r.agentHealth.degraded());
    EXPECT_GE(r.faultCounts.attachFails, 1u);

    // Partial operation: recv/poll metrics still flow, Eq. 1 reports 0.
    EXPECT_FALSE(r.samples.empty());
    EXPECT_EQ(r.observedRps, 0.0);
    for (const auto &s : r.samples) {
        EXPECT_EQ(s.send.count, 0u);
        EXPECT_GT(s.recv.count, 0u);
        EXPECT_FALSE(s.health.sendAttached);
    }
    EXPECT_GT(r.pollMeanDurNs, 0.0);
    expectFiniteSamples(r);
}

TEST(ChaosExperimentTest, SurvivesTotalAttachFailureWithBackoff)
{
    auto cfg = chaosConfig("data-caching", 0.6);
    cfg.fault.attachFailProbability = 1.0; // empty filter: all programs
    const auto r = runExperiment(cfg);

    EXPECT_FALSE(r.agentHealth.sendAttached);
    EXPECT_FALSE(r.agentHealth.recvAttached);
    EXPECT_FALSE(r.agentHealth.pollAttached);
    EXPECT_TRUE(r.samples.empty()); // nothing to observe ...
    EXPECT_GT(r.completed, 1000u);  // ... but the service is untouched
    EXPECT_GT(r.agentHealth.staleWindows, 0u);
    // The watchdog backed the sampling period off to its ceiling.
    EXPECT_EQ(r.agentHealth.backoffFactor, 8u);
    EXPECT_EQ(r.probeEvents, 0u);
}

TEST(ChaosExperimentTest, SurvivesMapUpdateFailures)
{
    auto cfg = chaosConfig("data-caching", 0.7);
    cfg.fault.mapUpdateFailProbability = 0.5;
    const auto r = runExperiment(cfg);

    EXPECT_GT(r.probeMapUpdateFails, 0u);
    EXPECT_GT(r.faultCounts.mapUpdateFails, 0u);
    EXPECT_TRUE(r.agentHealth.degraded());
    EXPECT_GT(r.agentHealth.mapUpdateFails, 0u);
    EXPECT_FALSE(r.samples.empty());
    // Send/recv deltas ride array maps: Eq. 1 survives hash-map trouble.
    EXPECT_GT(r.observedRps, 0.0);
    expectFiniteSamples(r);
}

TEST(ChaosExperimentTest, EveryWorkloadSurvivesTheEverythingPlan)
{
    // The acceptance bar: forced faults at every workload, no crash, no
    // NaN, health populated. (Shrunk rates keep runtime reasonable.)
    for (const auto &wl : workload::paperWorkloads()) {
        ExperimentConfig cfg;
        cfg.workload = wl;
        cfg.workload.saturationRps =
            std::min(cfg.workload.saturationRps, 3000.0);
        cfg.offeredRps = 0.7 * cfg.workload.saturationRps;
        cfg.requests = 3000;
        cfg.seed = 17;
        cfg.fault = everythingPlan();
        const auto r = runExperiment(cfg);
        EXPECT_GT(r.completed, 500u) << wl.name;
        EXPECT_FALSE(r.samples.empty()) << wl.name;
        expectFiniteSamples(r);
    }
}

TEST(ChaosExperimentTest, ClockJitterDegradesGracefully)
{
    auto cfg = chaosConfig("data-caching", 0.7);
    cfg.fault.clockJitterNs = sim::microseconds(20);
    const auto r = runExperiment(cfg);
    EXPECT_FALSE(r.samples.empty());
    // Guarded probes drop inverted pairs instead of wrapping u64:
    // variance stays finite and plausible (< 1 s^2).
    EXPECT_LT(r.sendVarNs2, 1e18);
    expectFiniteSamples(r);
}

TEST(ChaosExperimentTest, NetFaultsDepressThroughputNotValidity)
{
    auto cfg = chaosConfig("data-caching", 0.7, 29);
    const auto clean = runExperiment(cfg);

    cfg.fault.connResetProbability = 0.10;
    const auto faulty = runExperiment(cfg);

    EXPECT_GT(faulty.faultCounts.connResets, 0u);
    EXPECT_LT(faulty.completed, clean.completed);
    // The agent keeps tracking what the server actually serves.
    EXPECT_GT(faulty.observedRps, 0.0);
    expectFiniteSamples(faulty);
}

} // namespace
} // namespace reqobs
