/**
 * @file
 * Network-substrate tests: netem loss/delay statistics, TCP
 * retransmission timing and in-order delivery, and the full-duplex Link.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/experiment.hh"
#include "net/link.hh"
#include "net/load_balancer.hh"
#include "net/netem.hh"
#include "net/tcp.hh"
#include "sim/simulation.hh"

namespace reqobs::net {
namespace {

TEST(NetemTest, NoImpairmentPassesEverything)
{
    NetemConfig cfg;
    NetemQdisc q(cfg, sim::Rng(1));
    for (int i = 0; i < 1000; ++i) {
        const auto v = q.process();
        EXPECT_FALSE(v.dropped);
        EXPECT_EQ(v.delay, 0);
    }
    EXPECT_EQ(q.drops(), 0u);
    EXPECT_EQ(q.packets(), 1000u);
}

TEST(NetemTest, LossRateMatchesConfig)
{
    NetemConfig cfg;
    cfg.lossProbability = 0.01;
    NetemQdisc q(cfg, sim::Rng(2));
    const int n = 200000;
    int drops = 0;
    for (int i = 0; i < n; ++i)
        drops += q.process().dropped;
    EXPECT_NEAR(static_cast<double>(drops) / n, 0.01, 0.002);
}

TEST(NetemTest, CorrelatedLossComesInBursts)
{
    NetemConfig cfg;
    cfg.lossProbability = 0.05;
    cfg.lossCorrelation = 0.8;
    NetemQdisc q(cfg, sim::Rng(3));
    int drops = 0, after_drop = 0, drop_pairs = 0;
    bool prev = false;
    for (int i = 0; i < 400000; ++i) {
        const bool d = q.process().dropped;
        drops += d;
        if (prev) {
            ++after_drop;
            drop_pairs += d;
        }
        prev = d;
    }
    const double p_cond =
        static_cast<double>(drop_pairs) / static_cast<double>(after_drop);
    const double p_marg = static_cast<double>(drops) / 400000.0;
    // With correlation, P(drop | prev drop) must far exceed P(drop).
    EXPECT_GT(p_cond, 4.0 * p_marg);
}

TEST(NetemTest, DelayAndJitterBounds)
{
    NetemConfig cfg;
    cfg.delay = sim::milliseconds(10);
    cfg.jitter = sim::milliseconds(2);
    NetemQdisc q(cfg, sim::Rng(4));
    for (int i = 0; i < 10000; ++i) {
        const auto v = q.process();
        ASSERT_GE(v.delay, sim::milliseconds(8));
        ASSERT_LE(v.delay, sim::milliseconds(12));
    }
}

TEST(NetemTest, DescribeMatchesTableTwoLabels)
{
    NetemConfig cfg;
    EXPECT_EQ(cfg.describe(), "0ms delay, 0.0% loss");
    cfg.delay = sim::milliseconds(10);
    cfg.lossProbability = 0.01;
    EXPECT_EQ(cfg.describe(), "10ms delay, 1.0% loss");
}

TEST(NetemDeathTest, InvalidConfigIsFatal)
{
    NetemConfig cfg;
    cfg.lossProbability = 1.5;
    EXPECT_DEATH(NetemQdisc(cfg, sim::Rng(1)), "probability");
}

// -------------------------------------------------------------------- TCP

TEST(TcpPipeTest, CleanLinkDeliversAfterDelayAndSerialisation)
{
    sim::Simulation sim(1);
    NetemConfig netem;
    netem.delay = sim::milliseconds(5);
    TcpConfig tcp;
    std::vector<sim::Tick> arrivals;
    TcpPipe pipe(sim, netem, tcp, sim.forkRng(),
                 [&](kernel::Message &&) { arrivals.push_back(sim.now()); });
    kernel::Message m;
    m.bytes = 12500; // 10us at 1250 B/us
    pipe.send(std::move(m));
    sim.run();
    ASSERT_EQ(arrivals.size(), 1u);
    EXPECT_NEAR(static_cast<double>(arrivals[0]),
                static_cast<double>(sim::milliseconds(5) +
                                    sim::microseconds(10)),
                1000.0);
    EXPECT_EQ(pipe.retransmissions(), 0u);
}

TEST(TcpPipeTest, LossCostsAtLeastOneRto)
{
    sim::Simulation sim(1);
    NetemConfig netem;
    netem.lossProbability = 0.5;
    TcpConfig tcp;
    int delayed = 0, total = 0;
    auto pipe = std::make_unique<TcpPipe>(
        sim, netem, tcp, sim.forkRng(), [&](kernel::Message &&) {});
    std::vector<sim::Tick> sent_at, arrived_at;
    // Re-create with arrival capture.
    pipe = std::make_unique<TcpPipe>(
        sim, netem, tcp, sim.forkRng(),
        [&](kernel::Message &&) { arrived_at.push_back(sim.now()); });
    for (int i = 0; i < 200; ++i) {
        sent_at.push_back(sim.now());
        kernel::Message m;
        m.bytes = 100;
        pipe->send(std::move(m));
        sim.runFor(sim::seconds(3)); // let retransmissions settle
    }
    ASSERT_EQ(arrived_at.size(), 200u);
    for (int i = 0; i < 200; ++i) {
        const sim::Tick latency = arrived_at[i] - sent_at[i];
        ++total;
        if (latency >= tcp.minRto)
            ++delayed;
    }
    // With 50% loss on a sparse flow, a segment avoids the RTO only when
    // both its data and its ACK survive first try (P = 0.25), and
    // head-of-line blocking behind a long backoff delays a few more.
    const double frac = static_cast<double>(delayed) / total;
    EXPECT_GT(frac, 0.6);
    EXPECT_LT(frac, 0.97);
    EXPECT_GT(pipe->retransmissions(), 50u);
}

TEST(TcpPipeTest, InOrderDeliveryUnderLoss)
{
    sim::Simulation sim(9);
    NetemConfig netem;
    netem.lossProbability = 0.3;
    TcpConfig tcp;
    std::vector<std::uint64_t> order;
    TcpPipe pipe(sim, netem, tcp, sim.forkRng(),
                 [&](kernel::Message &&m) { order.push_back(m.requestId); });
    for (std::uint64_t i = 0; i < 100; ++i) {
        kernel::Message m;
        m.requestId = i;
        m.bytes = 10;
        pipe.send(std::move(m));
        sim.runFor(sim::microseconds(100));
    }
    sim.runFor(sim::seconds(200)); // drain every backoff
    ASSERT_EQ(order.size(), 100u);
    for (std::uint64_t i = 0; i < 100; ++i)
        ASSERT_EQ(order[i], i) << "head-of-line order violated";
}

TEST(TcpPipeTest, RtoBacksOffExponentially)
{
    // Force every packet to drop until maxRetries: latency must include
    // the full doubling series of RTOs.
    sim::Simulation sim(1);
    NetemConfig netem;
    netem.lossProbability = 1.0;
    netem.lossCorrelation = 0.0;
    TcpConfig tcp;
    tcp.maxRetries = 3;
    sim::Tick arrival = -1;
    TcpPipe pipe(sim, netem, tcp, sim.forkRng(),
                 [&](kernel::Message &&) { arrival = sim.now(); });
    kernel::Message m;
    m.bytes = 10;
    pipe.send(std::move(m));
    sim.run();
    // 200 + 400 + 800 ms of backoff.
    EXPECT_GE(arrival, sim::milliseconds(1400));
    EXPECT_EQ(pipe.retransmissions(), 3u);
}

// ------------------------------------------------------------------- Link

TEST(LinkTest, FullDuplexRoundTrip)
{
    sim::Simulation sim(5);
    auto sock = std::make_shared<kernel::Socket>(1);
    NetemConfig netem;
    netem.delay = sim::milliseconds(1);
    TcpConfig tcp;
    std::vector<std::uint64_t> responses;
    Link link(sim, netem, tcp, sock, [&](kernel::Message &&m) {
        responses.push_back(m.requestId);
    });

    kernel::Message req;
    req.requestId = 55;
    req.bytes = 100;
    link.sendRequest(std::move(req));
    sim.run();
    // Request reached the server socket.
    ASSERT_TRUE(sock->hasData());
    kernel::Message got = sock->pop();
    EXPECT_EQ(got.requestId, 55u);

    // Server responds through its tx hook -> client callback.
    kernel::Message resp;
    resp.requestId = 55;
    resp.isResponse = true;
    sock->transmit(std::move(resp));
    sim.run();
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0], 55u);
    EXPECT_EQ(link.upPipe().delivered(), 1u);
    EXPECT_EQ(link.downPipe().delivered(), 1u);
}

TEST(LinkTest, DestructionDisarmsSocketHook)
{
    sim::Simulation sim(5);
    auto sock = std::make_shared<kernel::Socket>(1);
    {
        Link link(sim, NetemConfig{}, TcpConfig{}, sock,
                  [](kernel::Message &&) {});
    }
    // Must not crash: the hook was cleared by ~Link.
    sock->transmit(kernel::Message{});
    sim.run();
}

TEST(NetemExperimentTest, CombinedDelayAndLossStaysWithinSingleFaultEnvelopes)
{
    // Table II applies netem impairments one at a time; production links
    // degrade on several axes at once. 10 ms delay AND 1% loss together
    // must not interact super-linearly in the syscall-derived metrics:
    // the combined deviation from clean stays within the sum of the
    // single-fault deviations (plus a small interaction margin).
    auto run = [](sim::Tick delay, double loss) {
        core::ExperimentConfig cfg;
        cfg.workload = workload::workloadByName("data-caching");
        cfg.workload.saturationRps =
            std::min(cfg.workload.saturationRps, 4000.0);
        cfg.offeredRps = 0.8 * cfg.workload.saturationRps;
        cfg.requests = 6000;
        cfg.seed = 19;
        cfg.netem.delay = delay;
        cfg.netem.lossProbability = loss;
        return core::runExperiment(cfg);
    };

    const auto clean = run(0, 0.0);
    const auto delayed = run(sim::milliseconds(10), 0.0);
    const auto lossy = run(0, 0.01);
    const auto both = run(sim::milliseconds(10), 0.01);

    ASSERT_GT(clean.completed, 4000u);
    ASSERT_GT(both.completed, 4000u);
    ASSERT_GT(both.observedRps, 0.0);

    // Eq. 1 stays accurate: the agent reads syscall timing on the
    // server, so even the combined impairment leaves RPS_obsv tracking
    // RPS_real as tightly as under either single fault.
    auto rpsErr = [](const core::ExperimentResult &r) {
        return std::abs(r.observedRps - r.achievedRps) / r.achievedRps;
    };
    const double worst_single =
        std::max(rpsErr(delayed), rpsErr(lossy));
    EXPECT_LT(rpsErr(both),
              std::max(2.0 * worst_single, rpsErr(clean) + 0.02));

    // Eq. 2's normalized send variance inflates under loss (RTO gaps);
    // adding delay on top must stay within the single-fault envelope
    // product, not blow up multiplicatively beyond it.
    auto cv2 = [](const core::ExperimentResult &r) {
        const double mean = 1e9 / r.observedRps;
        return r.sendVarNs2 / (mean * mean);
    };
    const double worst_cv2 =
        std::max({cv2(clean), cv2(delayed), cv2(lossy)});
    EXPECT_LT(cv2(both), 3.0 * worst_cv2);

    // Latency composes additively: combined p99 is bounded by the sum
    // of the single-fault p99s plus the clean baseline.
    EXPECT_LT(both.p99Ns, delayed.p99Ns + lossy.p99Ns + clean.p99Ns);
}

// ---------------------------------------------------------------------
// Load balancer edge cases: tie-breaking, drain mid-run, degenerate
// construction.

TEST(LoadBalancerTest, LeastConnectionsTiesRotateInsteadOfPinning)
{
    LoadBalancer lb(LbPolicy::LeastConnections, 3);
    // All backends idle: ties must rotate from the cursor, so an
    // equal-load fleet degrades to round-robin rather than hammering
    // backend 0.
    EXPECT_EQ(lb.pick(), 0u);
    EXPECT_EQ(lb.pick(), 1u);
    EXPECT_EQ(lb.pick(), 2u);
    EXPECT_EQ(lb.pick(), 0u);

    // With unequal load the minimum always wins, wherever the cursor is.
    lb.onDispatch(0);
    lb.onDispatch(0);
    lb.onDispatch(2);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(lb.pick(), 1u);
    lb.onDispatch(1);
    lb.onDispatch(1);
    lb.onDispatch(1);
    EXPECT_EQ(lb.pick(), 2u); // 2 has one inflight vs 0's two
}

TEST(LoadBalancerTest, DrainMidRunRoutesAroundAndRestores)
{
    LoadBalancer lb(LbPolicy::RoundRobin, 3);
    for (int i = 0; i < 3; ++i)
        lb.onDispatch(lb.pick());
    ASSERT_EQ(lb.inflight(1), 1u);

    // Drain backend 1 with a request still inflight: new picks skip it,
    // the inflight one completes normally.
    lb.setDrained(1, true);
    EXPECT_TRUE(lb.drained(1));
    EXPECT_EQ(lb.drainedCount(), 1u);
    for (int i = 0; i < 6; ++i)
        EXPECT_NE(lb.pick(), 1u);
    lb.onComplete(1);
    EXPECT_EQ(lb.inflight(1), 0u);

    // Undrain: backend 1 rejoins the rotation.
    lb.setDrained(1, false);
    EXPECT_EQ(lb.drainedCount(), 0u);
    bool saw_1 = false;
    for (int i = 0; i < 3; ++i)
        saw_1 = saw_1 || lb.pick() == 1;
    EXPECT_TRUE(saw_1);

    // Redundant drain/undrain calls are idempotent on the count.
    lb.setDrained(2, true);
    lb.setDrained(2, true);
    EXPECT_EQ(lb.drainedCount(), 1u);
    lb.setDrained(2, false);
    lb.setDrained(2, false);
    EXPECT_EQ(lb.drainedCount(), 0u);
}

TEST(LoadBalancerTest, FullyDrainedFleetDegradesToUndrainedPolicy)
{
    LoadBalancer lb(LbPolicy::LeastConnections, 2);
    lb.setDrained(0, true);
    lb.setDrained(1, true);
    // A confused controller drained everything: pick() must keep
    // working (drain flags ignored) instead of dead-ending the client.
    EXPECT_EQ(lb.pick(), 0u);
    EXPECT_EQ(lb.pick(), 1u);
    EXPECT_EQ(lb.pick(), 0u);
}

TEST(LoadBalancerTest, DegenerateConstructionAndUnknownDrainDie)
{
    EXPECT_DEATH(LoadBalancer(LbPolicy::RoundRobin, 0), "backend");
    LoadBalancer lb(LbPolicy::RoundRobin, 2);
    EXPECT_DEATH(lb.setDrained(7, true), "unknown backend");
}

} // namespace
} // namespace reqobs::net
