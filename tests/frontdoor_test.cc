/**
 * @file
 * Storm suite: the host-network front door. Drop accounting across the
 * ingress/SYN-queue/backlog path, the shared retransmit backoff
 * schedule and whole-run determinism under a storm, isolation of the
 * persistent-flow tenant from storm traffic on an uncontended host, the
 * accept-budget actuator, and bit-equality of the front-door latency
 * probe pair across all three eBPF execution engines.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "ebpf/maps.hh"
#include "ebpf/probes.hh"
#include "ebpf/runtime.hh"
#include "kernel/kernel.hh"
#include "net/frontdoor.hh"
#include "net/tcp.hh"
#include "sim/simulation.hh"
#include "workload/config.hh"
#include "workload/machine.hh"

namespace reqobs {
namespace {

/**
 * The front door's SYN retransmit timers ride the one shared backoff
 * schedule: doubling from minRto, capped at maxRetries doublings.
 */
TEST(FrontDoorBackoff, SharedScheduleDoublesAndCaps)
{
    net::TcpConfig tcp;
    tcp.minRto = sim::milliseconds(100);
    tcp.maxRetries = 3;
    EXPECT_EQ(net::synRetransmitTimeout(tcp, 0), sim::milliseconds(100));
    EXPECT_EQ(net::synRetransmitTimeout(tcp, 1), sim::milliseconds(200));
    EXPECT_EQ(net::synRetransmitTimeout(tcp, 2), sim::milliseconds(400));
    EXPECT_EQ(net::synRetransmitTimeout(tcp, 3), sim::milliseconds(800));
    // Past the cap the wait stays at the ceiling.
    EXPECT_EQ(net::synRetransmitTimeout(tcp, 9), sim::milliseconds(800));
}

/** A bare kernel with a front door and one listener process. */
struct DoorRig
{
    sim::Simulation sim;
    kernel::Kernel kernel;
    net::FrontDoor frontDoor;
    unsigned listener = 0;

    DoorRig(const net::FrontDoorConfig &fc, const net::ListenerConfig &lc,
            std::uint64_t seed = 7)
        : sim(seed), kernel(sim), frontDoor(kernel, fc)
    {
        const kernel::Pid pid = kernel.createProcess("frontdoor-test");
        listener = frontDoor.addListener(pid, lc);
        frontDoor.start();
    }

    net::FrontDoor &door() { return frontDoor; }
};

/**
 * A synchronized burst against a tiny accept backlog: most of the burst
 * overflows, retransmits on the backoff schedule, and eventually either
 * lands or exhausts its retries. Every counter identity must hold when
 * the run drains: each admission-path drop re-armed exactly one
 * retransmit timer or failed the flow, and every SYN at ingress was
 * either the flow's first or a counted retransmission.
 */
TEST(FrontDoorAccounting, BacklogOverflowDropAndRetryInvariantsHold)
{
    net::FrontDoorConfig fc;
    fc.ingressQueueDepth = 512;
    fc.ingressLatency = 1; // ~same-tick drain: the whole burst lands
                           // between acceptor wakeups
    fc.tcp.minRto = sim::milliseconds(20);
    fc.maxSynRetries = 6;
    net::ListenerConfig lc;
    lc.synQueueDepth = 512;
    lc.acceptBacklog = 2;
    lc.handshakeRtt = sim::microseconds(50);
    lc.serviceDemand = 0;
    DoorRig rig(fc, lc);

    const unsigned kConns = 300;
    std::uint64_t established = 0, failed_cb = 0;
    for (unsigned i = 0; i < kConns; ++i) {
        rig.sim.schedule(0, [&] {
            net::ConnectOptions opts;
            opts.onEstablished =
                [&](std::shared_ptr<kernel::Socket>) { ++established; };
            opts.onFailed = [&] { ++failed_cb; };
            rig.door().connect(rig.listener, std::move(opts));
        });
    }
    rig.sim.runUntil(sim::seconds(20));

    const net::FrontDoorCounts t = rig.door().totals();
    EXPECT_GT(t.backlogOverflows, 0u);
    EXPECT_GT(t.retransmits, 0u);

    // Callback accounting matches counter accounting, and every flow
    // resolved one way or the other.
    EXPECT_EQ(t.accepted, established);
    EXPECT_EQ(t.failed, failed_cb);
    EXPECT_EQ(established + failed_cb, kConns);

    // Path identities (quiescent run, no loris): each drop became one
    // retransmission or one failure; each ingress SYN was a first
    // attempt or a retransmission.
    EXPECT_EQ(t.drops(), t.retransmits + t.failed);
    EXPECT_EQ(t.syns, kConns + t.retransmits);

    // Nothing left stuck in the machine.
    EXPECT_EQ(rig.door().backlogDepth(rig.listener), 0u);
    EXPECT_EQ(rig.door().halfOpenCount(rig.listener), 0u);
    EXPECT_EQ(rig.door().ingressDepth(), 0u);

    // Accept latency measures the *admitted* SYN's trip (it re-stamps
    // on retransmission, exactly like the eBPF probe), so it carries at
    // least the handshake RTT; the retransmit backoff itself shows up
    // client-side (FrontDoorDeterminism exercises that path).
    EXPECT_GE(rig.door().acceptLatencies(rig.listener).p99(),
              static_cast<std::uint64_t>(lc.handshakeRtt));
}

/**
 * The accept-budget actuator (the controller's storm clamp) caps the
 * admission rate with a token bucket: over-budget SYNs drop before they
 * cost backlog slots or CPU.
 */
TEST(FrontDoorAccounting, AcceptBudgetCapsAdmissionRate)
{
    net::FrontDoorConfig fc;
    fc.tcp.minRto = sim::milliseconds(50);
    fc.maxSynRetries = 1; // drop-once-then-fail keeps the run short
    net::ListenerConfig lc;
    DoorRig rig(fc, lc);

    const double kBudget = 100.0; // conns/sec
    rig.door().setAcceptBudget(rig.listener, kBudget);
    EXPECT_EQ(rig.door().acceptBudget(rig.listener), kBudget);

    // Offer 10x the budget for one second.
    const unsigned kConns = 1000;
    for (unsigned i = 0; i < kConns; ++i) {
        rig.sim.schedule(sim::microseconds(1000) * i, [&] {
            rig.door().connect(rig.listener, net::ConnectOptions{});
        });
    }
    rig.sim.runUntil(sim::seconds(5));

    const net::FrontDoorCounts t = rig.door().totals();
    EXPECT_GT(t.budgetDrops, 0u);
    // Admissions track budget * window (1s offer + burst allowance),
    // nowhere near the offered rate.
    EXPECT_LE(t.accepted, static_cast<std::uint64_t>(3.0 * kBudget));
    EXPECT_GE(t.accepted, static_cast<std::uint64_t>(0.5 * kBudget));

    // Restoring the budget lifts the cap.
    rig.door().setAcceptBudget(rig.listener, 0.0);
    EXPECT_EQ(rig.door().acceptBudget(rig.listener), 0.0);
}

/** Harness config with a storm hammering an overflow-prone listener. */
core::ExperimentConfig
stormConfig(std::uint64_t seed)
{
    core::ExperimentConfig cfg;
    cfg.workload = workload::workloadByName("data-caching");
    cfg.workload.saturationRps =
        std::min(cfg.workload.saturationRps, 4000.0);
    cfg.offeredRps = 0.5 * cfg.workload.saturationRps;
    cfg.requests = 3000;
    cfg.seed = seed;
    cfg.frontDoor.enabled = true;
    cfg.frontDoor.listener.synQueueDepth = 4;
    cfg.frontDoor.listener.acceptBacklog = 4;
    cfg.frontDoor.stormEnabled = true;
    cfg.frontDoor.storm.connRps = 2000.0;
    cfg.frontDoor.storm.lorisFraction = 0.3; // squat the tiny SYN queue
    cfg.frontDoor.storm.lorisHold = sim::milliseconds(100);
    return cfg;
}

/**
 * Retransmit backoff (and everything else about a storm run) is
 * deterministic: the door itself draws no random numbers, so two
 * identical configs replay bit for bit — drop counters, retransmission
 * counts, storm outcomes, latency quantiles, ground truth.
 */
TEST(FrontDoorDeterminism, StormRunsReplayBitForBit)
{
    const core::ExperimentResult a = core::runExperiment(stormConfig(17));
    const core::ExperimentResult b = core::runExperiment(stormConfig(17));

    // The loris squat must actually exercise the drop/backoff machinery
    // for the replay check to mean anything.
    EXPECT_GT(a.frontDoorCounts.drops(), 0u);
    EXPECT_GT(a.frontDoorCounts.retransmits, 0u);
    EXPECT_GT(a.frontDoorCounts.lorisReaped, 0u);
    EXPECT_GT(a.stormEstablished, 0u);

    EXPECT_EQ(a.achievedRps, b.achievedRps);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.p50Ns, b.p50Ns);
    EXPECT_EQ(a.p99Ns, b.p99Ns);
    EXPECT_EQ(a.observedRps, b.observedRps);
    EXPECT_EQ(a.syscalls, b.syscalls);

    EXPECT_EQ(a.frontDoorCounts.syns, b.frontDoorCounts.syns);
    EXPECT_EQ(a.frontDoorCounts.ingressDrops, b.frontDoorCounts.ingressDrops);
    EXPECT_EQ(a.frontDoorCounts.synQueueOverflows,
              b.frontDoorCounts.synQueueOverflows);
    EXPECT_EQ(a.frontDoorCounts.backlogOverflows,
              b.frontDoorCounts.backlogOverflows);
    EXPECT_EQ(a.frontDoorCounts.budgetDrops, b.frontDoorCounts.budgetDrops);
    EXPECT_EQ(a.frontDoorCounts.shedDrops, b.frontDoorCounts.shedDrops);
    EXPECT_EQ(a.frontDoorCounts.retransmits, b.frontDoorCounts.retransmits);
    EXPECT_EQ(a.frontDoorCounts.accepted, b.frontDoorCounts.accepted);
    EXPECT_EQ(a.frontDoorCounts.failed, b.frontDoorCounts.failed);
    EXPECT_EQ(a.frontDoorCounts.lorisReaped, b.frontDoorCounts.lorisReaped);
    EXPECT_EQ(a.frontDoorAcceptP50Ns, b.frontDoorAcceptP50Ns);
    EXPECT_EQ(a.frontDoorAcceptP99Ns, b.frontDoorAcceptP99Ns);
    EXPECT_EQ(a.stormEstablished, b.stormEstablished);
    EXPECT_EQ(a.stormFailed, b.stormFailed);
    EXPECT_EQ(a.stormConnP99Ns, b.stormConnP99Ns);
}

/**
 * Storm-vs-persistent isolation. The front door and its storm sit
 * strictly after every victim component in the construction (RNG-fork)
 * order, and on a host with CPU headroom the GPS scheduler gives the
 * victim identical service whether or not storm conns share the
 * machine. So the persistent-flow tenant's ground truth must be
 * bit-identical between a doorless run and a full storm run — the
 * storm's damage on an uncontended host is confined to the front door,
 * exactly the place syscall probes cannot see.
 */
TEST(FrontDoorIsolation, VictimGroundTruthUnperturbedByStorm)
{
    core::ExperimentConfig plain;
    plain.workload = workload::workloadByName("data-caching");
    plain.workload.saturationRps =
        std::min(plain.workload.saturationRps, 4000.0);
    plain.offeredRps = 0.5 * plain.workload.saturationRps;
    plain.requests = 3000;
    plain.seed = 23;

    core::ExperimentConfig stormy = plain;
    stormy.frontDoor.enabled = true;
    stormy.frontDoor.listener.serviceDemand = sim::microseconds(100);
    stormy.frontDoor.stormEnabled = true;
    stormy.frontDoor.storm.connRps = 3000.0;

    const core::ExperimentResult a = core::runExperiment(plain);
    const core::ExperimentResult b = core::runExperiment(stormy);

    // Doorless run reports nothing from the door...
    EXPECT_EQ(a.frontDoorCounts.syns, 0u);
    EXPECT_EQ(a.stormEstablished, 0u);
    // ...the storm run carried real traffic through it.
    EXPECT_GT(b.frontDoorCounts.accepted, 0u);
    EXPECT_GT(b.stormEstablished, 0u);

    // And the victim can't tell the difference, bit for bit.
    EXPECT_EQ(a.achievedRps, b.achievedRps);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.p50Ns, b.p50Ns);
    EXPECT_EQ(a.p95Ns, b.p95Ns);
    EXPECT_EQ(a.p99Ns, b.p99Ns);
    EXPECT_EQ(a.qosViolated, b.qosViolated);
}

/** Full content snapshot of a hash map, in key order. */
std::map<std::string, std::string>
hashSnapshot(const ebpf::HashMap &m)
{
    std::map<std::string, std::string> out;
    const std::uint32_t ks = m.keySize(), vs = m.valueSize();
    m.forEach([&](const std::uint8_t *k, const std::uint8_t *v) {
        out.emplace(std::string(reinterpret_cast<const char *>(k), ks),
                    std::string(reinterpret_cast<const char *>(v), vs));
    });
    return out;
}

/** One engine's front-door probe pair on its own kernel and maps. */
struct DoorProbeStack
{
    sim::Simulation sim{1};
    std::unique_ptr<kernel::Kernel> kernel;
    std::unique_ptr<ebpf::EbpfRuntime> rt;
    ebpf::probes::FrontDoorMaps maps;

    explicit DoorProbeStack(ebpf::ExecEngine engine)
    {
        kernel = std::make_unique<kernel::Kernel>(sim);
        ebpf::RuntimeConfig rc;
        rc.engine = engine;
        rt = std::make_unique<ebpf::EbpfRuntime>(*kernel, rc);
        ebpf::probes::TenantSet tenants;
        tenants.tgids = {1000, 2000};
        tenants.pollSyscalls = {232, 232};
        maps = ebpf::probes::createFrontDoorMaps(*rt, 2, "fd");
        attach(ebpf::probes::buildFrontDoorIngress(*rt, maps),
               kernel::TracepointId::NetRxEnqueue);
        attach(ebpf::probes::buildFrontDoorAccept(*rt, tenants, maps),
               kernel::TracepointId::SockAccept);
    }

    void attach(ebpf::ProgramSpec spec, kernel::TracepointId point)
    {
        const auto vr = rt->loadAndAttach(std::move(spec), point);
        ASSERT_TRUE(vr.ok) << vr.error;
    }

    void fire(kernel::TracepointId point, std::uint64_t flow,
              std::uint32_t tgid, std::uint64_t ts)
    {
        kernel::RawSyscallEvent ev;
        ev.point = point;
        ev.syscall = static_cast<std::int64_t>(flow);
        ev.pidTgid = kernel::makePidTgid(tgid, tgid);
        ev.timestamp = static_cast<sim::Tick>(ts);
        kernel->tracepoints().fire(ev);
    }
};

/**
 * The front-door latency probe pair observes identically under the
 * reference interpreter, the translation cache, and the native engine:
 * same per-tenant histograms, same leftover ingress stamps, same
 * retired-instruction accounting. The stream covers both tenants, an
 * unknown tgid (no slot), accepts with no ingress stamp (the probe's
 * missed-SYN skip path), re-stamped flows, and latencies from a few
 * microseconds up into the saturating top bucket.
 */
TEST(FrontDoorProbeEngines, HistogramsAgreeBitForBit)
{
    DoorProbeStack ref(ebpf::ExecEngine::Reference);
    DoorProbeStack xlt(ebpf::ExecEngine::Translated);
    DoorProbeStack nat(ebpf::ExecEngine::Native);
    DoorProbeStack *stacks[] = {&ref, &xlt, &nat};

    std::uint64_t ts = 1000;
    for (std::uint64_t i = 0; i < 5000; ++i) {
        const std::uint64_t flow = i + 1;
        const std::uint32_t tgid =
            i % 3 == 0 ? 1000u : (i % 3 == 1 ? 2000u : 7777u);

        if (i % 11 != 0) { // every 11th accept arrives with no stamp
            ts += 130;
            for (auto *s : stacks)
                s->fire(kernel::TracepointId::NetRxEnqueue, flow, tgid, ts);
            if (i % 13 == 0) { // retransmitted SYN: re-stamp the flow
                ts += 777;
                for (auto *s : stacks)
                    s->fire(kernel::TracepointId::NetRxEnqueue, flow, tgid,
                            ts);
            }
        }
        // Front-door latency spanning the histogram: sub-bucket-0 up to
        // the ~134 ms saturating bucket on every 31st flow.
        std::uint64_t wait = 2000 + (i % 17) * 3000 + (i % 5) * 250000;
        if (i % 31 == 0)
            wait += 200u * 1000u * 1000u;
        ts += wait;
        for (auto *s : stacks)
            s->fire(kernel::TracepointId::SockAccept, flow, tgid, ts);
        if (i % 7 == 0) { // flows left half-open keep their stamps
            const std::uint64_t squatter = 1000000 + i;
            ts += 90;
            for (auto *s : stacks)
                s->fire(kernel::TracepointId::NetRxEnqueue, squatter, tgid,
                        ts);
        }
    }

    const auto h0 = ebpf::probes::readFrontDoorHist(*ref.rt, ref.maps, 0);
    const auto h1 = ebpf::probes::readFrontDoorHist(*ref.rt, ref.maps, 1);
    for (auto *other : {&xlt, &nat}) {
        EXPECT_EQ(h0, ebpf::probes::readFrontDoorHist(*other->rt,
                                                      other->maps, 0));
        EXPECT_EQ(h1, ebpf::probes::readFrontDoorHist(*other->rt,
                                                      other->maps, 1));
        EXPECT_EQ(hashSnapshot(ref.rt->hashAt(ref.maps.ingressFd)),
                  hashSnapshot(other->rt->hashAt(other->maps.ingressFd)));
        EXPECT_EQ(ref.rt->eventsProcessed(), other->rt->eventsProcessed());
        EXPECT_EQ(ref.rt->insnsInterpreted(), other->rt->insnsInterpreted());
        EXPECT_EQ(ref.rt->totalProbeCost(), other->rt->totalProbeCost());
        EXPECT_EQ(ref.rt->mapUpdateFails(), other->rt->mapUpdateFails());
    }

    // The histograms carry real distributions: both tenant slots saw
    // stamped accepts, spread over several buckets including the
    // saturating one, and the quantile readout is ordered.
    std::uint64_t total0 = 0, nonzero0 = 0;
    for (std::uint64_t c : h0) {
        total0 += c;
        nonzero0 += c > 0 ? 1 : 0;
    }
    EXPECT_GT(total0, 1000u);
    EXPECT_GE(nonzero0, 4u);
    EXPECT_GT(h0.back(), 0u);
    std::uint64_t total1 = 0;
    for (std::uint64_t c : h1)
        total1 += c;
    EXPECT_GT(total1, 1000u);
    const std::uint64_t p50 = ebpf::probes::frontDoorQuantile(h0, 0.5);
    const std::uint64_t p99 = ebpf::probes::frontDoorQuantile(h0, 0.99);
    EXPECT_GT(p50, 0u);
    EXPECT_GE(p99, p50);
}

} // namespace
} // namespace reqobs
