/**
 * @file
 * Tests for the tracelet DSL: lexing/parsing errors, expression
 * semantics through compiled bytecode, map statements, emits, the
 * Listing-1 equivalence, and verifier acceptance of compiled output.
 */

#include <gtest/gtest.h>

#include "client/load_generator.hh"
#include "core/agent.hh"
#include "core/profile.hh"
#include "ebpf/dsl.hh"
#include "ebpf/probes.hh"
#include "workload/server_app.hh"
#include "kernel/kernel.hh"
#include "sim/simulation.hh"

namespace reqobs::ebpf::dsl {
namespace {

using kernel::Fd;
using kernel::Kernel;
using kernel::Message;
using kernel::Syscall;
using kernel::Task;
using kernel::Tid;

struct Rig
{
    sim::Simulation sim{17};
    Kernel kernel{sim};
    EbpfRuntime rt{kernel};
    kernel::Pid pid = kernel.createProcess("dsl-app");

    /** Fire one synthetic sys_exit event. */
    void
    fire(std::int64_t id, sim::Tick ts, std::int64_t ret = 0,
         kernel::Tid tid = 1)
    {
        kernel::RawSyscallEvent ev;
        ev.point = kernel::TracepointId::SysExit;
        ev.syscall = id;
        ev.pidTgid = kernel::makePidTgid(pid, tid);
        ev.timestamp = ts;
        ev.ret = ret;
        kernel.tracepoints().fire(ev);
    }
};

TEST(DslCompileTest, RejectsSyntaxErrors)
{
    Rig r;
    struct Case
    {
        const char *src;
        const char *needle;
    };
    for (const Case &c : {
             Case{"", "empty"},
             Case{"foo { }", "unknown probe point"},
             Case{"sys_exit { @m[0] = ; }", "expected an expression"},
             Case{"sys_exit { x = 1 }", "expected ';'"},
             Case{"sys_exit { @m[1 = 2; }", "expected ']'"},
             Case{"sys_exit / pid == / { }", "expected an expression"},
             Case{"sys_exit { pid = 1; }", "cannot assign to builtin"},
             Case{"sys_exit { x = $; }", "unexpected character"},
             Case{"sys_exit { x = y; }", "unknown variable"},
             Case{"sys_exit { x = z; z = 1; }", "read before assignment"},
             Case{"sys_exit { emit 5; }", "expected '('"},
         }) {
        const auto res = compile(c.src, r.rt);
        EXPECT_FALSE(res.ok) << c.src;
        EXPECT_NE(res.error.find(c.needle), std::string::npos)
            << c.src << " -> " << res.error;
    }
}

TEST(DslCompileTest, CompiledProgramsPassTheVerifier)
{
    Rig r;
    const auto res = compile(R"(
        sys_enter / pid == 100 / { @seen[id] += 1; }
        sys_exit / pid == 100 && (id == 44 || id == 46) / {
            d = ts - @last[0];
            @last[0] = ts;
            @sum[0] += d;
            @n[0] += 1;
            emit(d);
        }
    )",
                              r.rt);
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_EQ(res.probes.size(), 2u);
    for (const auto &p : res.probes) {
        const auto vr = verify(p.spec);
        EXPECT_TRUE(vr.ok) << vr.error;
    }
    EXPECT_EQ(res.maps.size(), 4u);
    EXPECT_GE(res.ringFd, 0);
}

TEST(DslExecTest, ArithmeticAndPrecedence)
{
    Rig r;
    Tracelet t(R"(sys_exit {
        @a[0] = 2 + 3 * 4;
        @b[0] = (2 + 3) * 4;
        @c[0] = 100 / 7;
        @d[0] = 100 % 7;
        @e[0] = 1 << 10;
        @f[0] = (0xff & 0x0f) | 0x100;
        @g[0] = 10 - 3 - 2;
        @h[0] = -5 + 6;
        @i[0] = 7 ^ 1;
    })",
               r.rt);
    ASSERT_TRUE(t.ok()) << t.error();
    r.fire(0, 1000);
    EXPECT_EQ(t.read("a", 0), 14u);
    EXPECT_EQ(t.read("b", 0), 20u);
    EXPECT_EQ(t.read("c", 0), 14u);
    EXPECT_EQ(t.read("d", 0), 2u);
    EXPECT_EQ(t.read("e", 0), 1024u);
    EXPECT_EQ(t.read("f", 0), 0x10fu);
    EXPECT_EQ(t.read("g", 0), 5u);
    EXPECT_EQ(t.read("h", 0), 1u);
    EXPECT_EQ(t.read("i", 0), 6u);
}

TEST(DslExecTest, ComparisonsAndLogic)
{
    Rig r;
    Tracelet t(R"(sys_exit {
        @lt[0] = 3 < 5;  @lt[1] = 5 < 3;
        @le[0] = 5 <= 5; @gt[0] = 9 > 2;
        @ge[0] = 2 >= 3; @eq[0] = 4 == 4;
        @ne[0] = 4 != 4;
        @and[0] = 1 && 2; @and[1] = 1 && 0;
        @or[0] = 0 || 3;  @or[1] = 0 || 0;
        @not[0] = !0;     @not[1] = !7;
    })",
               r.rt);
    ASSERT_TRUE(t.ok()) << t.error();
    r.fire(0, 1);
    EXPECT_EQ(t.read("lt", 0), 1u);
    EXPECT_EQ(t.read("lt", 1), 0u);
    EXPECT_EQ(t.read("le", 0), 1u);
    EXPECT_EQ(t.read("gt", 0), 1u);
    EXPECT_EQ(t.read("ge", 0), 0u);
    EXPECT_EQ(t.read("eq", 0), 1u);
    EXPECT_EQ(t.read("ne", 0), 0u);
    EXPECT_EQ(t.read("and", 0), 1u);
    EXPECT_EQ(t.read("and", 1), 0u);
    EXPECT_EQ(t.read("or", 0), 1u);
    EXPECT_EQ(t.read("or", 1), 0u);
    EXPECT_EQ(t.read("not", 0), 1u);
    EXPECT_EQ(t.read("not", 1), 0u);
}

TEST(DslExecTest, BuiltinsReflectTheEvent)
{
    Rig r;
    Tracelet t(R"(sys_exit {
        @id[0] = id; @ts[0] = ts; @ret[0] = ret;
        @pid[0] = pid; @tid[0] = tid;
    })",
               r.rt);
    ASSERT_TRUE(t.ok()) << t.error();
    r.fire(232, 123456, 7, /*tid=*/42);
    EXPECT_EQ(t.read("id", 0), 232u);
    EXPECT_EQ(t.read("ts", 0), 123456u);
    EXPECT_EQ(t.read("ret", 0), 7u);
    EXPECT_EQ(t.read("pid", 0), r.pid);
    EXPECT_EQ(t.read("tid", 0), 42u);
}

TEST(DslExecTest, FiltersGateExecution)
{
    Rig r;
    Tracelet t("sys_exit / id == 44 / { @n[0] += 1; }", r.rt);
    ASSERT_TRUE(t.ok()) << t.error();
    r.fire(44, 1);
    r.fire(45, 2);
    r.fire(44, 3);
    EXPECT_EQ(t.read("n", 0), 2u);
}

TEST(DslExecTest, MapAccumulateAndKeyedReads)
{
    Rig r;
    Tracelet t(R"(sys_exit {
        @per_id[id] += 1;
        @total[0] += ret;
    })",
               r.rt);
    ASSERT_TRUE(t.ok()) << t.error();
    r.fire(44, 1, 10);
    r.fire(44, 2, 20);
    r.fire(46, 3, 5);
    EXPECT_EQ(t.read("per_id", 44), 2u);
    EXPECT_EQ(t.read("per_id", 46), 1u);
    EXPECT_EQ(t.read("per_id", 99), 0u);
    EXPECT_EQ(t.read("total", 0), 35u);
}

TEST(DslExecTest, LocalsAndEmit)
{
    Rig r;
    Tracelet t(R"(sys_exit {
        x = ts * 2;
        y = x + 1;
        emit(y);
    })",
               r.rt);
    ASSERT_TRUE(t.ok()) << t.error();
    r.fire(0, 100);
    r.fire(0, 200);
    EXPECT_EQ(t.drainEmits(), (std::vector<std::uint64_t>{201, 401}));
}

TEST(DslExecTest, ListingOneEquivalence)
{
    // The paper's Listing 1 written as a tracelet must agree with the
    // hand-assembled duration probes on real kernel activity.
    Rig r;
    char src[512];
    std::snprintf(src, sizeof(src), R"(
        sys_enter / pid == %u && id == 35 / { @start[tid] = ts; }
        sys_exit  / pid == %u && id == 35 / {
            @count[0] += 1;
            @sum[0] += ts - @start[tid];
        }
    )",
                  r.pid, r.pid);
    Tracelet t(src, r.rt);
    ASSERT_TRUE(t.ok()) << t.error();

    const auto maps = probes::createDurationMaps(r.rt, "ref");
    ASSERT_TRUE(r.rt.loadAndAttach(
        probes::buildDurationEnter(r.rt, r.pid, 35, maps),
        kernel::TracepointId::SysEnter));
    ASSERT_TRUE(r.rt.loadAndAttach(
        probes::buildDurationExit(r.rt, r.pid, 35, maps),
        kernel::TracepointId::SysExit));

    r.kernel.spawnThread(r.pid, [](Kernel &k, Tid tid) -> Task {
        co_await k.sleepFor(tid, sim::milliseconds(3));
        co_await k.sleepFor(tid, sim::milliseconds(5));
    });
    r.sim.runFor(sim::milliseconds(20));

    const auto ref = r.rt.arrayAt(maps.statsFd)
                         .at<probes::SyscallStats>(0);
    EXPECT_EQ(t.read("count", 0), ref.count);
    // The tracelet runs alongside the reference probe, so each sees the
    // other's execution cost inside the syscall duration; allow a small
    // difference.
    EXPECT_NEAR(static_cast<double>(t.read("sum", 0)),
                static_cast<double>(ref.sumNs), 4000.0);
}

TEST(DslExecTest, RandIsBounded)
{
    Rig r;
    Tracelet t("sys_exit { @r[ts] = rand; }", r.rt);
    ASSERT_TRUE(t.ok()) << t.error();
    for (int i = 1; i <= 16; ++i)
        r.fire(0, i);
    for (int i = 1; i <= 16; ++i)
        EXPECT_LE(t.read("r", i), 0xffffffffull);
}

TEST(DslExecTest, DivisionByZeroRuntimeValueYieldsZero)
{
    Rig r;
    Tracelet t("sys_exit { @q[0] = 100 / ret; }", r.rt);
    ASSERT_TRUE(t.ok()) << t.error();
    r.fire(0, 1, /*ret=*/0);
    EXPECT_EQ(t.read("q", 0), 0u);
    r.fire(0, 2, /*ret=*/4);
    EXPECT_EQ(t.read("q", 0), 25u);
}

TEST(DslExecTest, DeepExpressionsStillCompile)
{
    Rig r;
    Tracelet t("sys_exit { @x[0] = ((((1+2)*(3+4))+((5+6)*(7+8)))"
               "*(((9+10)*(11+12))+((13+14)*(15+16))...); }",
               r.rt);
    // Malformed on purpose: must fail cleanly, not crash.
    EXPECT_FALSE(t.ok());

    Tracelet t2("sys_exit { @x[0] = ((((1+2)*(3+4))+((5+6)*(7+8)))"
                "*(((9+10)*(11+12))+((13+14)*(15+16)))); }",
                r.rt);
    ASSERT_TRUE(t2.ok()) << t2.error();
    r.fire(0, 1);
    EXPECT_EQ(t2.read("x", 0),
              ((((1 + 2) * (3 + 4)) + ((5 + 6) * (7 + 8))) *
               (((9 + 10) * (11 + 12)) + ((13 + 14) * (15 + 16)))));
}

TEST(DslExecTest, DetachStopsUpdates)
{
    Rig r;
    Tracelet t("sys_exit { @n[0] += 1; }", r.rt);
    ASSERT_TRUE(t.ok()) << t.error();
    r.fire(0, 1);
    EXPECT_EQ(t.read("n", 0), 1u);
    t.detach();
    r.fire(0, 2);
    EXPECT_EQ(t.read("n", 0), 1u);
}

TEST(DslDeathTest, ReadingUnknownMapIsFatal)
{
    Rig r;
    Tracelet t("sys_exit { @n[0] += 1; }", r.rt);
    ASSERT_TRUE(t.ok()) << t.error();
    EXPECT_DEATH(t.read("nope", 0), "no map");
}

} // namespace
} // namespace reqobs::ebpf::dsl

namespace reqobs::ebpf::dsl {
namespace {

TEST(DslAgentEquivalenceTest, TraceletEqOneMatchesTheAgent)
{
    // Cross-validation: Eq. 1 computed by a user-written tracelet must
    // agree with the ObservabilityAgent's hand-assembled delta probe on
    // a live workload.
    sim::Simulation sim(29);
    Kernel kernel(sim);
    auto wl = workload::workloadByName("data-caching");
    wl.saturationRps = 3000.0;
    wl.connections = 8;
    workload::ServerApp app(kernel, wl);
    client::ClientConfig cc;
    cc.offeredRps = 1500.0;
    cc.warmup = 0;
    client::LoadGenerator gen(sim, app, net::NetemConfig{},
                              net::TcpConfig{}, cc);

    core::ObservabilityAgent agent(kernel, app.frontPid(),
                                   core::profileFor(wl));

    EbpfRuntime rt(kernel);
    char src[256];
    std::snprintf(src, sizeof(src),
                  "sys_exit / pid == %u && id == 46 / {\n"
                  "  d = ts - @last[0];\n"
                  "  @last[0] = ts;\n"
                  "  @n[0] += 1;\n"
                  "  @sum[0] += d;\n"
                  "}\n",
                  app.frontPid());
    Tracelet t(src, rt);
    ASSERT_TRUE(t.ok()) << t.error();

    app.start();
    agent.start();
    gen.start();
    sim.runFor(sim::seconds(4));

    // The tracelet's very first delta is bogus (ts - 0), so compare
    // rates computed from counts over the run duration rather than the
    // delta sums.
    const std::uint64_t n = t.read("n", 0);
    ASSERT_GT(n, 1000u);
    const double run_seconds = sim::toSeconds(sim.now());
    const double tracelet_rate = static_cast<double>(n) / run_seconds;
    EXPECT_NEAR(tracelet_rate, agent.overallObservedRps(),
                0.05 * agent.overallObservedRps());
    EXPECT_NEAR(tracelet_rate, gen.achievedRps(),
                0.08 * gen.achievedRps());
    agent.stop();
    gen.stop();
}

} // namespace
} // namespace reqobs::ebpf::dsl
