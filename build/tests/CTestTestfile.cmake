# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_ebpf_vm[1]_include.cmake")
include("/root/repo/build/tests/test_ebpf_verifier[1]_include.cmake")
include("/root/repo/build/tests/test_ebpf_maps[1]_include.cmake")
include("/root/repo/build/tests/test_ebpf_probes[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_client[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_ebpf_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_io_uring[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_ebpf_dsl[1]_include.cmake")
