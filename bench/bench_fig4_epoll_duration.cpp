/**
 * @file
 * Fig. 4 — mean event-polling duration under varying load.
 *
 * Per workload and load level, prints the mean epoll_wait/select
 * duration measured in-kernel by the Listing-1 probe pair, normalized to
 * its per-workload maximum (the paper's y-axis), with the QoS-failure
 * level marked. The duration must decrease toward saturation and
 * stabilise at a floor past it — the saturation-slack signal.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace reqobs;
    bench::printHeader(
        "Fig. 4: mean epoll/select duration under varying load");

    const auto fractions = std::vector<double>{0.30, 0.50, 0.65, 0.80,
                                               0.90, 0.95, 1.00, 1.10,
                                               1.20, 1.30};

    for (const auto &wl : workload::paperWorkloads()) {
        const auto levels = bench::sweep(wl, fractions);
        std::vector<double> durations;
        for (const auto &lvl : levels)
            durations.push_back(lvl.result.pollMeanDurNs);
        const auto norm = stats::normalizeByMax(durations);
        const int knee = bench::qosKneeIndex(levels);

        std::printf("\n--- %s [%s] (QoS crossed at level %d) ---\n",
                    wl.name.c_str(),
                    kernel::syscallName(
                        kernel::syscallId(wl.pollSyscall))
                        .c_str(),
                    knee);
        std::printf("%6s %12s %14s %10s %5s\n", "load", "RPS_Real",
                    "pollDur(us)", "normDur", "QoS");
        for (std::size_t i = 0; i < levels.size(); ++i) {
            const auto &r = levels[i].result;
            std::printf("%6.2f %12.1f %14.3f %10.3f %5s\n",
                        levels[i].loadFraction, r.achievedRps,
                        r.pollMeanDurNs / 1e3, norm[i],
                        r.qosViolated ? "FAIL" : "ok");
        }
    }

    std::printf("\nExpected shape (paper): duration falls monotonically "
                "with load and\nstabilises once the application saturates "
                "(idleness -> 0).\n");
    return 0;
}
