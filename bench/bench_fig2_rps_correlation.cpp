/**
 * @file
 * Fig. 2 — observability of RPS. For every workload: sweep offered load
 * from 10% to 100% of saturation, collect up to ten windowed RPS_obsv
 * estimates per level (Eq. 1 computed from the in-kernel counters), fit
 * RPS_real against RPS_obsv, and report R², slope and residual spread.
 *
 * Paper reference: "Most of the benchmarks exhibit a coefficient of
 * determination (R²) greater than 0.94. Notably, WebSearch had the
 * lowest coefficient of 0.86."
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace reqobs;
    bench::printHeader(
        "Fig. 2: RPS_Obsv vs RPS_Real correlation per workload");

    const std::vector<double> fractions = {0.1, 0.2, 0.3, 0.4, 0.5,
                                           0.6, 0.7, 0.8, 0.9, 1.0};

    std::printf("%-14s %8s %10s %10s %12s %8s\n", "workload", "R^2",
                "slope*", "intercept*", "resid.std*", "points");
    std::printf("%-14s %8s %10s %10s %12s %8s\n", "", "", "(norm)",
                "(norm)", "(norm)", "");

    for (const auto &wl : workload::paperWorkloads()) {
        const auto levels = bench::sweep(wl, fractions);
        // Normalize both axes by their maxima (the paper plots
        // normalized RPS on both axes).
        double max_obs = 1e-9, max_real = 1e-9;
        for (const auto &lvl : levels) {
            for (const auto &s : lvl.result.samples)
                max_obs = std::max(max_obs, s.rpsObsv);
            max_real = std::max(max_real, lvl.result.achievedRps);
        }
        stats::LinearRegression reg;
        std::size_t points = 0;
        for (const auto &lvl : levels) {
            std::size_t used = 0;
            for (const auto &s : lvl.result.samples) {
                if (used++ >= 10)
                    break;
                if (s.rpsObsv <= 0.0)
                    continue;
                reg.add(s.rpsObsv / max_obs,
                        lvl.result.achievedRps / max_real);
                ++points;
            }
        }
        const auto fit = reg.fit();
        std::printf("%-14s %8.4f %10.3f %10.3f %12.4f %8zu\n",
                    wl.name.c_str(), fit.r2, fit.slope, fit.intercept,
                    fit.residualStd, points);
    }

    std::printf("\nExpected shape (paper): R^2 > 0.94 everywhere except "
                "web-search (~0.86,\nits front end emits a variable number "
                "of writes per response).\n");
    return 0;
}
