/**
 * @file
 * Supervised-lifecycle robustness: how much collector-side failure
 * (agent crashes, sampler stalls, lost kernel map state) the supervised
 * pipeline rides through before the paper's headline result (Eq. 1
 * R^2 >= ~0.94, Fig. 2) breaks.
 *
 * Part 1 repeats the Fig. 2 correlation for every paper workload under
 * each lifecycle fault class, with restart MTTR held at about one
 * sample period (checkpoint + pinned-map restore + backoff floor).
 *
 * Part 2 sweeps the restart MTTR on one workload and reports R^2 and
 * the saturation-detection lag — how much later the Fig. 1 saturation
 * knee is flagged when the collector keeps dying.
 *
 * Part 3 ablates the loss-aware window correction under kernel-side
 * probe misses (autoHarden off vs on), isolating how much of the
 * robustness comes from Eq. 1/Eq. 2 de-biasing alone.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hh"
#include "client/load_generator.hh"
#include "core/profile.hh"
#include "fault/fault.hh"
#include "workload/server_app.hh"

namespace {

using namespace reqobs;

/** Rows for the optional --json emission (lifecycle layout). */
bench::JsonRows g_json;

/**
 * Lifecycle fault class; rates are expressed in units of the per-level
 * sample period so slow workloads (hundred-ms periods, minute-long
 * windows) and fast ones (sub-ms periods) see comparable crash density.
 */
struct LifecycleClass
{
    const char *name;
    double crashMtbfPeriods; ///< 0 = no crash fault
    double stallMtbfPeriods; ///< 0 = no stall fault
    double wipeProbability;  ///< P(kernel map state lost per restart)
    /**
     * Scale the crash MTBF by the expected window-fill time instead of
     * the sample period. A wipe costs one full window of accumulation,
     * so wipe classes must pace crashes in window units or slow
     * workloads (minute-long windows, sub-second periods) would tear
     * every window before it ever fills.
     */
    bool mtbfInWindows = false;
};

std::vector<LifecycleClass>
lifecycleClasses()
{
    return {
        {"clean", 0.0, 0.0, 0.0},       // supervised, no faults
        {"crash/16", 16.0, 0.0, 0.0},   // crash every ~16 sample periods
        {"crash/6", 6.0, 0.0, 0.0},     // aggressive crash rate
        {"c+wipe", 4.0, 0.0, 0.5, true}, // a map wipe every ~8 windows
        {"stall", 0.0, 24.0, 0.0},      // sampler hangs; watchdog recovers
    };
}

/**
 * Supervised sweep: per-level configs so the lifecycle MTBFs and the
 * restart backoff floor scale with that level's sample period. The
 * backoff floor = one sample period keeps MTTR <= ~1.2 periods after
 * jitter — inside the <= 2-period regime the recovery design targets.
 */
std::vector<bench::LevelResult>
supervisedSweep(const workload::WorkloadConfig &wl,
                const std::vector<double> &fractions,
                const LifecycleClass &lc, double mttr_periods = 1.0)
{
    core::ExperimentConfig base = bench::benchConfig(wl);
    base.supervised = true;
    std::vector<core::ExperimentConfig> configs;
    for (double frac : fractions) {
        auto cfg = core::sweepPointConfig(base, frac, bench::benchScaling());
        const double period = static_cast<double>(cfg.agent.samplePeriod);
        // Expected time to fill one window: bounded below by the sample
        // period, else by accumulating minWindowSyscalls sends.
        const double fill = std::max(
            period, 1e9 * static_cast<double>(cfg.agent.minWindowSyscalls) /
                        cfg.offeredRps);
        if (lc.crashMtbfPeriods > 0.0)
            cfg.fault.agentCrashMtbf = static_cast<sim::Tick>(
                lc.crashMtbfPeriods * (lc.mtbfInWindows ? fill : period));
        if (lc.stallMtbfPeriods > 0.0)
            cfg.fault.samplerStallMtbf =
                static_cast<sim::Tick>(lc.stallMtbfPeriods * period);
        cfg.fault.mapWipeOnRestartProbability = lc.wipeProbability;
        cfg.supervisor.restartBackoffInitial =
            static_cast<sim::Tick>(mttr_periods * period);
        cfg.supervisor.restartBackoffMax =
            static_cast<sim::Tick>(4.0 * mttr_periods * period);
        configs.push_back(cfg);
    }
    const auto results = core::runExperimentsParallel(configs);
    std::vector<bench::LevelResult> levels;
    for (std::size_t i = 0; i < results.size(); ++i)
        levels.push_back({fractions[i], results[i]});
    return levels;
}

struct SweepTotals
{
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t stalls = 0;
    std::uint64_t wipes = 0;
    double downtimeMs = 0.0;
};

SweepTotals
totals(const std::vector<bench::LevelResult> &levels)
{
    SweepTotals t;
    for (const auto &lvl : levels) {
        const auto &ss = lvl.result.supervisorStats;
        t.crashes += ss.crashes;
        t.restarts += ss.restarts;
        t.stalls += ss.stallsDetected;
        t.wipes += ss.mapWipes;
        t.downtimeMs += static_cast<double>(ss.downtime) / 1e6;
    }
    return t;
}

void
partOneMatrix()
{
    bench::printHeader("Supervised lifecycle: Eq. 1 R^2 per workload per "
                       "fault class (MTTR ~1 period)");
    const auto classes = lifecycleClasses();
    const std::vector<double> fractions = {0.4, 0.6, 0.8, 1.0};

    std::vector<std::string> cols;
    for (const auto &lc : classes)
        cols.push_back(lc.name);
    bench::MatrixTable::header("workload", cols);

    const std::size_t n_classes = classes.size();
    std::vector<SweepTotals> agg(n_classes);
    std::vector<double> degraded(n_classes, 0.0);
    for (const auto &wl : workload::paperWorkloads()) {
        bench::MatrixTable::rowLabel(wl.name);
        for (std::size_t i = 0; i < n_classes; ++i) {
            const auto levels = supervisedSweep(wl, fractions, classes[i]);
            const double r2 = bench::fitObsVsReal(levels).r2;
            const double deg = bench::degradedFraction(levels);
            const SweepTotals t = totals(levels);
            bench::MatrixTable::cell(r2);
            agg[i].crashes += t.crashes;
            agg[i].restarts += t.restarts;
            agg[i].stalls += t.stalls;
            agg[i].wipes += t.wipes;
            agg[i].downtimeMs += t.downtimeMs;
            degraded[i] += deg;
            g_json.addLifecycle("lifecycle",
                                wl.name + "/" + classes[i].name, r2, deg,
                                t.crashes, t.downtimeMs);
        }
        bench::MatrixTable::endRow();
    }
    const double nwl =
        static_cast<double>(workload::paperWorkloads().size());
    auto footer = [&](const char *label, auto value) {
        std::vector<double> row;
        for (std::size_t i = 0; i < n_classes; ++i)
            row.push_back(value(i));
        bench::MatrixTable::rowF1(label, row);
    };
    footer("crashes/sweep",
           [&](std::size_t i) { return agg[i].crashes / nwl; });
    footer("restarts/swp",
           [&](std::size_t i) { return agg[i].restarts / nwl; });
    footer("stalls/sweep",
           [&](std::size_t i) { return agg[i].stalls / nwl; });
    footer("wipes/sweep",
           [&](std::size_t i) { return agg[i].wipes / nwl; });
    footer("down ms/swp",
           [&](std::size_t i) { return agg[i].downtimeMs / nwl; });
    footer("degraded%",
           [&](std::size_t i) { return 100.0 * degraded[i] / nwl; });

    std::printf("\nExpected shape: the clean column is bit-identical to "
                "the unsupervised Fig. 2\nvalues; crash columns stay "
                "within a few 1e-3 of clean because checkpoints plus\n"
                "pinned-map restore make a restart lose only the events "
                "fired while down.\nWipes surface as torn windows "
                "(degraded%%), not as corrupted estimates.\n");
}

/**
 * Saturation-detection lag under collector crashes: the agent learns
 * its Eq. 2 baseline at 50% load, then the offered load steps to 1.3x
 * saturation. Returns ms from the step to the first sample flagged
 * saturated (-1 = never), mirroring the detector integration test but
 * with a crashing, supervised collector.
 */
double
stepDetectionLagMs(double crash_mtbf_ms, double mttr_periods)
{
    sim::Simulation sim(29);
    std::unique_ptr<fault::FaultInjector> inj;
    fault::FaultPlan plan;
    plan.agentCrashMtbf =
        static_cast<sim::Tick>(crash_mtbf_ms * 1e6);
    if (plan.any())
        inj = std::make_unique<fault::FaultInjector>(plan, sim.forkRng());

    kernel::Kernel kernel(sim);
    kernel.setFaultInjector(inj.get());
    auto wl = workload::workloadByName("data-caching");
    wl.saturationRps = 4000.0;
    workload::ServerApp app(kernel, wl);
    client::ClientConfig cc;
    cc.offeredRps = 0.5 * wl.saturationRps;
    cc.warmup = 0;
    client::LoadGenerator gen(sim, app, net::NetemConfig{},
                              net::TcpConfig{}, cc, inj.get());
    core::AgentConfig ac;
    core::SupervisorConfig sc;
    sc.restartBackoffInitial =
        static_cast<sim::Tick>(mttr_periods *
                               static_cast<double>(ac.samplePeriod));
    sc.restartBackoffMax = 4 * sc.restartBackoffInitial;
    core::Supervisor sup(kernel, app.frontPid(), core::profileFor(wl), ac,
                         sc, inj.get(), sim.forkRng());
    app.start();
    sup.start();
    gen.start();
    sim.runFor(sim::seconds(2)); // learn the baseline at 50% load
    const sim::Tick step = sim.now();
    gen.setOfferedRps(1.3 * wl.saturationRps);
    sim.runFor(sim::seconds(4));
    double lag = -1.0;
    for (const auto &s : sup.samples()) {
        if (s.saturated && s.t > step) {
            lag = static_cast<double>(s.t - step) / 1e6;
            break;
        }
    }
    sup.stop();
    gen.stop();
    return lag;
}

void
partTwoMttr()
{
    bench::printHeader("MTTR sweep (data-caching, crash MTBF = 12 "
                       "periods): accuracy + detection lag");
    const auto wl = workload::workloadByName("data-caching");
    const std::vector<double> fractions = {0.4, 0.6, 0.8, 1.0};
    const LifecycleClass crashy = {"crash", 12.0, 0.0, 0.0};
    const LifecycleClass clean = {"clean", 0.0, 0.0, 0.0};
    const std::vector<double> mttrs = {1.0, 2.0, 4.0, 8.0};

    std::printf("%-10s %8s %8s %8s %10s %10s %8s %10s\n", "mttr", "R^2",
                "crashes", "restarts", "mttr_ms", "down_ms", "deg%",
                "satlag_ms");
    bench::dashRule();
    const double clean_sat = stepDetectionLagMs(0.0, 1.0);
    {
        const auto levels = supervisedSweep(wl, fractions, clean);
        const double r2 = bench::fitObsVsReal(levels).r2;
        std::printf("%-10s %8.4f %8d %8d %10s %10.1f %8.1f %10.1f\n",
                    "clean", r2, 0, 0, "-", 0.0, 0.0, clean_sat);
        g_json.addLifecycle("mttr", "clean", r2, 0.0, 0, 0.0);
    }
    for (double m : mttrs) {
        const auto levels = supervisedSweep(wl, fractions, crashy, m);
        const double r2 = bench::fitObsVsReal(levels).r2;
        const double deg = bench::degradedFraction(levels);
        const SweepTotals t = totals(levels);
        const double mttr_ms =
            t.restarts > 0 ? t.downtimeMs / static_cast<double>(t.restarts)
                           : 0.0;
        // Crash MTBF for the step run: 12 agent sample periods (100 ms).
        const double sat = stepDetectionLagMs(12.0 * 100.0, m);
        char label[32];
        std::snprintf(label, sizeof(label), "%.0fp", m);
        std::printf("%-10s %8.4f %8llu %8llu %10.2f %10.1f %8.1f %10.1f\n",
                    label, r2,
                    static_cast<unsigned long long>(t.crashes),
                    static_cast<unsigned long long>(t.restarts), mttr_ms,
                    t.downtimeMs, 100.0 * deg, sat);
        g_json.addLifecycle("mttr", label, r2, deg, t.crashes,
                            t.downtimeMs);
    }

    std::printf("\nExpected shape: R^2 decays gently with MTTR (longer "
                "outages lose more events\nper crash) and the saturation "
                "flag lags the clean run (%.1f ms) by at most a\nfew "
                "windows, because the detector state itself is "
                "checkpointed.\n",
                clean_sat);
}

void
partThreeLossAblation()
{
    bench::printHeader("Loss-aware correction ablation (data-caching): "
                       "probe misses, autoHarden off vs on");
    const auto wl = workload::workloadByName("data-caching");
    const std::vector<double> fractions = {0.4, 0.6, 0.8, 1.0};
    const std::vector<double> miss_ps = {0.0, 0.05, 0.2};

    auto run = [&](double p, bool loss_aware) {
        core::ExperimentConfig base = bench::benchConfig(wl);
        base.fault.probeMissProbability = p;
        // Pin the hardened knobs by hand so the only difference between
        // the two arms is the Eq. 1/Eq. 2 loss correction itself.
        base.autoHarden = false;
        base.agent.tolerateAttachFailures = true;
        base.agent.guardedProbes = true;
        base.agent.staleBackoff = true;
        base.agent.lossAware = loss_aware;
        return core::runSweepParallel(base, fractions,
                                      bench::benchScaling());
    };

    std::printf("%-8s %-10s %8s %9s %10s %10s %10s\n", "miss_p", "arm",
                "R^2", "rps_err%", "misses", "corrected", "deg%");
    bench::dashRule();
    for (double p : miss_ps) {
        for (int arm = 0; arm < 2; ++arm) {
            const bool loss_aware = arm == 1;
            const auto levels = run(p, loss_aware);
            const double r2 = bench::fitObsVsReal(levels).r2;
            const double deg = bench::degradedFraction(levels);
            // Windowed Eq. 1 error at the 0.8-load level; the overall
            // kernel aggregate is deliberately left uncorrected, so the
            // windowed estimates are where the correction shows.
            const auto &mid = levels[2].result;
            double obs = 0.0;
            int nw = 0;
            for (const auto &s : mid.samples) {
                if (s.rpsObsv > 0.0) {
                    obs += s.rpsObsv;
                    ++nw;
                }
            }
            const double err =
                nw > 0 && mid.achievedRps > 0.0
                    ? 100.0 * (obs / nw - mid.achievedRps) /
                          mid.achievedRps
                    : 0.0;
            std::uint64_t misses = 0, corrected = 0;
            for (const auto &lvl : levels) {
                misses += lvl.result.agentHealth.probeMisses;
                corrected += lvl.result.agentHealth.lossCorrectedEvents;
            }
            std::printf("%-8.2f %-10s %8.4f %9.2f %10llu %10llu %9.1f\n",
                        p, loss_aware ? "corrected" : "raw", r2, err,
                        static_cast<unsigned long long>(misses),
                        static_cast<unsigned long long>(corrected),
                        100.0 * deg);
            char label[40];
            std::snprintf(label, sizeof(label), "miss-%.2f/%s", p,
                          loss_aware ? "corrected" : "raw");
            g_json.addLifecycle("loss", label, r2, deg, 0, 0.0);
        }
    }

    std::printf("\nExpected shape: at miss_p = 0 both arms are "
                "bit-identical (the correction is\ninert without loss); "
                "with misses the corrected arm re-adds the lost events "
                "to\neach window's count, keeping the windowed Eq. 1 "
                "estimates near truth while\nthe raw arm undercounts in "
                "proportion to miss_p.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path = bench::jsonPathArg(argc, argv);
    partOneMatrix();
    partTwoMttr();
    partThreeLossAblation();
    if (!json_path.empty())
        g_json.write(json_path);
    return 0;
}
