/**
 * @file
 * Fig. 5 — impact of network loss on tail latency vs syscall-derived
 * metrics, for the Triton inference server with the gRPC protocol.
 *
 * Top row of the paper: client-side p99 under 0% and 1% loss — loss
 * inflates it by orders of magnitude (TCP RTO recovery).
 * Bottom row: the normalized mean epoll_wait duration measured by the
 * in-kernel probe — unaffected, because retransmissions never change
 * when the *server* does work.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace reqobs;
    bench::printHeader(
        "Fig. 5: loss vs tail latency (triton-grpc), p99 and epoll_wait");

    const auto wl = workload::workloadByName("triton-grpc");
    const std::vector<double> fractions = {0.3, 0.5, 0.7, 0.9, 1.0};

    net::NetemConfig clean;
    net::NetemConfig lossy;
    lossy.lossProbability = 0.01;

    const auto rows_clean = bench::sweep(wl, fractions, clean);
    const auto rows_lossy = bench::sweep(wl, fractions, lossy);

    std::printf("\n(top) client p99 latency, ms\n");
    std::printf("%6s %16s %16s %10s\n", "load", "0% loss", "1% loss",
                "ratio");
    for (std::size_t i = 0; i < fractions.size(); ++i) {
        const double a = rows_clean[i].result.p99Ns / 1e6;
        const double b = rows_lossy[i].result.p99Ns / 1e6;
        std::printf("%6.2f %16.2f %16.2f %10.2f\n", fractions[i], a, b,
                    a > 0 ? b / a : 0.0);
    }

    // Bottom row: epoll_wait duration, normalized per series.
    std::vector<double> dur_clean, dur_lossy;
    for (std::size_t i = 0; i < fractions.size(); ++i) {
        dur_clean.push_back(rows_clean[i].result.pollMeanDurNs);
        dur_lossy.push_back(rows_lossy[i].result.pollMeanDurNs);
    }
    const auto n_clean = stats::normalizeByMax(dur_clean);
    const auto n_lossy = stats::normalizeByMax(dur_lossy);

    std::printf("\n(bottom) normalized mean epoll_wait duration\n");
    std::printf("%6s %16s %16s %10s\n", "load", "0% loss", "1% loss",
                "abs.diff");
    double max_diff = 0.0;
    for (std::size_t i = 0; i < fractions.size(); ++i) {
        const double d = std::abs(n_clean[i] - n_lossy[i]);
        max_diff = std::max(max_diff, d);
        std::printf("%6.2f %16.3f %16.3f %10.3f\n", fractions[i],
                    n_clean[i], n_lossy[i], d);
    }

    std::printf("\nExpected shape (paper): 1%% loss disturbs p99 heavily "
                "(RTO spikes), while\nthe epoll_wait-duration curve is "
                "essentially unchanged (max diff %.3f).\n",
                max_diff);
    return 0;
}
