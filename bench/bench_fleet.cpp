/**
 * @file
 * Fleet aggregation: does the paper's Eq. 1 linearity survive merging
 * per-machine in-kernel estimates across a load-balanced fleet?
 *
 * Part 1 repeats the Fig. 2 correlation at fleet level for 1/2/4
 * machines: per-machine RPS_obsv windows are merged on sample-period
 * buckets (rates add) and regressed against the fleet's client-side
 * achieved rate.
 *
 * Part 2 ablates the load-balancing policy on a speed-skewed fleet:
 * round-robin overloads the slow machines while least-connections sheds
 * onto the fast ones, and the fleet-aggregated estimate must stay on
 * the Eq. 1 line either way — the aggregator only ever sums rates, so
 * placement policy is invisible to it.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/cluster.hh"

namespace {

using namespace reqobs;

bench::JsonRows g_json;

std::vector<double>
fractions()
{
    return {0.4, 0.6, 0.8, 1.0};
}

/** Cluster config: one tenant spread over @p machines machines. */
core::ClusterExperimentConfig
fleetConfig(const workload::WorkloadConfig &wl, unsigned machines,
            double frac, net::LbPolicy policy,
            std::vector<double> speed = {})
{
    core::ClusterExperimentConfig cfg;
    core::ClusterTenantSpec t;
    t.workload = wl;
    double capacity = static_cast<double>(machines);
    if (!speed.empty())
        capacity = 0.0;
    for (double s : speed)
        capacity += s;
    t.offeredRps = frac * wl.saturationRps * capacity;
    t.requests = static_cast<std::uint64_t>(
        std::clamp(t.offeredRps * 4.0, 2500.0, 25000.0 * machines));
    cfg.tenants.push_back(std::move(t));
    cfg.machines = machines;
    cfg.machineSpeedFactors = std::move(speed);
    cfg.lbPolicy = policy;
    cfg.agent.minWindowSyscalls = 256;
    cfg.seed = 7 + static_cast<std::uint64_t>(frac * 1000.0);
    return cfg;
}

/**
 * Fleet-level Fig. 2 fit: up to ten full-fleet buckets per level (every
 * machine contributing) against that level's achieved fleet rate.
 */
double
fleetR2(const std::vector<core::ClusterExperimentResult> &levels)
{
    stats::LinearRegression reg;
    for (const auto &res : levels) {
        const auto &tr = res.tenants[0];
        std::size_t used = 0;
        for (const auto &s : tr.fleetSeries) {
            if (used >= 10)
                break;
            if (s.rpsObsv > 0.0 &&
                s.contributors == tr.machines.size()) {
                reg.add(s.rpsObsv, tr.achievedRps);
                ++used;
            }
        }
    }
    return reg.fit().r2;
}

std::vector<core::ClusterExperimentResult>
fleetSweep(const workload::WorkloadConfig &wl, unsigned machines,
           net::LbPolicy policy, const std::vector<double> &speed = {})
{
    std::vector<core::ClusterExperimentConfig> configs;
    for (double frac : fractions())
        configs.push_back(fleetConfig(wl, machines, frac, policy, speed));
    return core::runClusterExperimentsParallel(configs);
}

void
partOneMachineCount()
{
    bench::printHeader("Fleet Eq. 1 R^2 vs machine count (round-robin, "
                       "homogeneous)");
    const std::vector<std::string> workloads = {"img-dnn", "xapian"};
    const std::vector<unsigned> counts = {1, 2, 4};

    std::vector<std::string> cols;
    for (unsigned m : counts)
        cols.push_back("m" + std::to_string(m));
    bench::MatrixTable::header("workload", cols);

    for (const auto &name : workloads) {
        const auto wl = workload::workloadByName(name);
        bench::MatrixTable::rowLabel(name);
        for (unsigned m : counts) {
            const auto levels =
                fleetSweep(wl, m, net::LbPolicy::RoundRobin);
            const double r2 = fleetR2(levels);
            bench::MatrixTable::cell(r2);
            g_json.add("fleet", name + "/m" + std::to_string(m), r2, 0.0);
        }
        bench::MatrixTable::endRow();
    }

    std::printf("\nExpected shape: the m1 column is the single-machine "
                "Fig. 2 fit (the cluster\nharness degenerates to the "
                "plain experiment there); aggregation preserves or\n"
                "sharpens the linearity because summing per-machine rates "
                "averages out their\nindependent window noise.\n");
}

void
partTwoLbAblation()
{
    bench::printHeader("LB policy ablation (img-dnn, 4 machines, speeds "
                       "1.0/0.9/0.7/0.5)");
    const auto wl = workload::workloadByName("img-dnn");
    const std::vector<double> speed = {1.0, 0.9, 0.7, 0.5};
    const std::vector<net::LbPolicy> policies = {
        net::LbPolicy::RoundRobin, net::LbPolicy::LeastConnections};

    std::printf("%-18s %8s %10s %10s %10s %10s\n", "policy", "R^2",
                "ach@1.0", "p99@1.0ms", "min_share", "max_share");
    bench::dashRule();
    for (const auto policy : policies) {
        const auto levels = fleetSweep(wl, 4, policy, speed);
        const double r2 = fleetR2(levels);
        const auto &top = levels.back().tenants[0];
        std::uint64_t min_c = top.machines[0].completed;
        std::uint64_t max_c = min_c;
        for (const auto &m : top.machines) {
            min_c = std::min(min_c, m.completed);
            max_c = std::max(max_c, m.completed);
        }
        const double total = static_cast<double>(
            std::max<std::uint64_t>(top.completed, 1));
        std::printf("%-18s %8.4f %10.1f %10.2f %9.1f%% %9.1f%%\n",
                    net::lbPolicyName(policy), r2, top.achievedRps,
                    static_cast<double>(top.p99Ns) / 1e6,
                    100.0 * static_cast<double>(min_c) / total,
                    100.0 * static_cast<double>(max_c) / total);
        g_json.add("lb", std::string("img-dnn/") +
                             net::lbPolicyName(policy), r2, 0.0);
    }

    std::printf("\nExpected shape: least-connections shifts completions "
                "toward the fast\nmachines (wider share spread, better "
                "achieved rate and tail at saturation),\nwhile both "
                "policies leave the fleet-aggregated R^2 on the Eq. 1 "
                "line — the\naggregator sums rates and never sees "
                "placement.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path = bench::jsonPathArg(argc, argv);
    partOneMachineCount();
    partTwoLbAblation();
    if (!json_path.empty())
        g_json.write(json_path);
    return 0;
}
