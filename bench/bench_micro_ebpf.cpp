/**
 * @file
 * google-benchmark micro-benchmarks for the eBPF substrate itself:
 * interpreter dispatch, map operations from bytecode, full probe
 * executions on tracepoint events, and verifier load time. These bound
 * the host-side cost of the simulation (the *simulated* probe cost is
 * modelled separately by RuntimeConfig).
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "ebpf/assembler.hh"
#include "ebpf/helpers.hh"
#include "ebpf/probes.hh"
#include "ebpf/runtime.hh"
#include "ebpf/translate.hh"
#include "ebpf/verifier.hh"
#include "ebpf/vm.hh"
#include "kernel/kernel.hh"
#include "sim/simulation.hh"

namespace {

using namespace reqobs;
using namespace reqobs::ebpf;

void
BM_VmAluLoopBody(benchmark::State &state)
{
    // Straight-line ALU: measures raw interpreter dispatch.
    ProgramBuilder b;
    b.movImm(R0, 1);
    for (int i = 0; i < 64; ++i)
        b.addImm(R0, 3).mulImm(R0, 1).xorImm(R0, 5);
    b.exit_();
    ProgramSpec spec;
    spec.insns = b.build();
    Vm vm;
    ExecEnv env;
    TraceCtx ctx{};
    for (auto _ : state) {
        auto r = vm.run(spec, reinterpret_cast<std::uint8_t *>(&ctx),
                        sizeof(ctx), env);
        benchmark::DoNotOptimize(r.r0);
    }
    state.SetItemsProcessed(state.iterations() * (64 * 3 + 2));
}
BENCHMARK(BM_VmAluLoopBody);

void
BM_VmHashMapUpdateLookup(benchmark::State &state)
{
    auto map = std::make_unique<HashMap>(8, 8, 1024);
    ProgramBuilder b;
    b.stImm(R10, -8, 5, BPF_DW)
        .stImm(R10, -16, 99, BPF_DW)
        .ldMapFd(R1, 3)
        .mov(R2, R10)
        .addImm(R2, -8)
        .mov(R3, R10)
        .addImm(R3, -16)
        .movImm(R4, 0)
        .call(helper::kMapUpdateElem)
        .ldMapFd(R1, 3)
        .mov(R2, R10)
        .addImm(R2, -8)
        .call(helper::kMapLookupElem)
        .jeqImm(R0, 0, "out")
        .ldxdw(R0, R0, 0)
        .label("out")
        .exit_();
    ProgramSpec spec;
    spec.insns = b.build();
    spec.maps[3] = map.get();
    Vm vm;
    ExecEnv env;
    TraceCtx ctx{};
    for (auto _ : state) {
        auto r = vm.run(spec, reinterpret_cast<std::uint8_t *>(&ctx),
                        sizeof(ctx), env);
        benchmark::DoNotOptimize(r.r0);
    }
}
BENCHMARK(BM_VmHashMapUpdateLookup);

void
BM_DeltaProbeOnTracepointEvent(benchmark::State &state)
{
    // End-to-end cost of one traced syscall event through the runtime.
    sim::Simulation sim(1);
    kernel::Kernel kernel(sim);
    EbpfRuntime rt(kernel);
    const auto maps = probes::createDeltaMaps(rt, "bench");
    auto vr = rt.loadAndAttach(
        probes::buildDeltaExit(rt, 1000, {44}, maps),
        kernel::TracepointId::SysExit);
    if (!vr)
        state.SkipWithError(vr.error.c_str());

    kernel::RawSyscallEvent ev;
    ev.point = kernel::TracepointId::SysExit;
    ev.syscall = 44;
    ev.pidTgid = kernel::makePidTgid(1000, 1);
    std::uint64_t ts = 1;
    for (auto _ : state) {
        ev.timestamp = static_cast<sim::Tick>(ts += 1000);
        benchmark::DoNotOptimize(kernel.tracepoints().fire(ev));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeltaProbeOnTracepointEvent);

void
BM_FilteredOutEvent(benchmark::State &state)
{
    // The common fast path: an event for some other process.
    sim::Simulation sim(1);
    kernel::Kernel kernel(sim);
    EbpfRuntime rt(kernel);
    const auto maps = probes::createDeltaMaps(rt, "bench");
    auto vr = rt.loadAndAttach(
        probes::buildDeltaExit(rt, 1000, {44}, maps),
        kernel::TracepointId::SysExit);
    if (!vr)
        state.SkipWithError(vr.error.c_str());
    kernel::RawSyscallEvent ev;
    ev.point = kernel::TracepointId::SysExit;
    ev.syscall = 0; // read: not in the family
    ev.pidTgid = kernel::makePidTgid(2000, 2);
    ev.timestamp = 1;
    for (auto _ : state)
        benchmark::DoNotOptimize(kernel.tracepoints().fire(ev));
}
BENCHMARK(BM_FilteredOutEvent);

/** Verified Listing-1 duration probes plus their translated forms. */
struct ListingOnePair
{
    sim::Simulation sim{1};
    kernel::Kernel kernel{sim};
    EbpfRuntime rt{kernel};
    probes::DurationMaps maps;
    ProgramSpec enter, exit;
    TranslatedProgram xEnter, xExit;
    std::string error;

    ListingOnePair()
        : maps(probes::createDurationMaps(rt, "bench")),
          enter(probes::buildDurationEnter(rt, 1000, 232, maps)),
          exit(probes::buildDurationExit(rt, 1000, 232, maps))
    {
        const auto ve = verify(enter);
        const auto vx = verify(exit);
        if (!ve.ok || !vx.ok) {
            error = ve.ok ? vx.error : ve.error;
            return;
        }
        if (!translate(enter, ve.maxStackDepth, &xEnter, &error))
            return;
        translate(exit, vx.maxStackDepth, &xExit, &error);
    }
};

void
BM_ListingOneProbe(benchmark::State &state, ExecEngine engine)
{
    // Reference-vs-translated engine cost on the paper's Listing-1
    // program itself (the duration-enter probe), executed directly on
    // the VM with no tracepoint routing around it.
    ListingOnePair p;
    if (!p.error.empty())
        state.SkipWithError(p.error.c_str());
    Vm vm;
    TraceCtx ctx{};
    ctx.id = 232;
    ctx.pidTgid = kernel::makePidTgid(1000, 1);
    ExecEnv env;
    env.pidTgid = ctx.pidTgid;
    auto *cp = reinterpret_cast<std::uint8_t *>(&ctx);
    std::uint64_t ts = 1;
    for (auto _ : state) {
        ctx.ts = ts += 1000;
        env.nowNs = ctx.ts;
        auto r = engine == ExecEngine::Translated
                     ? vm.run(p.xEnter, cp, sizeof(ctx), env)
                     : vm.run(p.enter, cp, sizeof(ctx), env);
        benchmark::DoNotOptimize(r.r0);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_ListingOneProbe, reference, ExecEngine::Reference);
BENCHMARK_CAPTURE(BM_ListingOneProbe, translated, ExecEngine::Translated);

void
BM_ListingOneProbePair(benchmark::State &state, ExecEngine engine)
{
    // The full Listing-1 enter/exit pair per iteration: the enter run
    // populates the start-timestamp map so the exit run always takes
    // its complete path (lookup, delta, stats update, delete).
    ListingOnePair p;
    if (!p.error.empty())
        state.SkipWithError(p.error.c_str());
    Vm vm;
    TraceCtx ctx{};
    ctx.id = 232;
    ctx.pidTgid = kernel::makePidTgid(1000, 1);
    ExecEnv env;
    env.pidTgid = ctx.pidTgid;
    auto *cp = reinterpret_cast<std::uint8_t *>(&ctx);
    const bool xlt = engine == ExecEngine::Translated;
    std::uint64_t ts = 1;
    for (auto _ : state) {
        ctx.ts = ts += 1000;
        env.nowNs = ctx.ts;
        if (xlt)
            vm.run(p.xEnter, cp, sizeof(ctx), env);
        else
            vm.run(p.enter, cp, sizeof(ctx), env);
        ctx.ts = ts += 700;
        env.nowNs = ctx.ts;
        auto r = xlt ? vm.run(p.xExit, cp, sizeof(ctx), env)
                     : vm.run(p.exit, cp, sizeof(ctx), env);
        benchmark::DoNotOptimize(r.r0);
    }
    state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK_CAPTURE(BM_ListingOneProbePair, reference, ExecEngine::Reference);
BENCHMARK_CAPTURE(BM_ListingOneProbePair, translated,
                  ExecEngine::Translated);

void
BM_VerifyDurationExitProbe(benchmark::State &state)
{
    sim::Simulation sim(1);
    kernel::Kernel kernel(sim);
    EbpfRuntime rt(kernel);
    const auto maps = probes::createDurationMaps(rt, "bench");
    const ProgramSpec spec =
        probes::buildDurationExit(rt, 1000, 232, maps);
    for (auto _ : state) {
        auto r = verify(spec);
        benchmark::DoNotOptimize(r.ok);
    }
}
BENCHMARK(BM_VerifyDurationExitProbe);

void
BM_SimulatedSyscallRoundTrip(benchmark::State &state)
{
    // Host cost of a full simulated epoll+recv+send request cycle with
    // the agent's four probes attached (what the figure benches pay).
    sim::Simulation sim(1);
    kernel::Kernel kernel(sim);
    EbpfRuntime rt(kernel);
    const kernel::Pid pid = kernel.createProcess("bench");
    const auto smaps = probes::createDeltaMaps(rt, "send");
    auto vr = rt.loadAndAttach(
        probes::buildDeltaExit(rt, pid, {44}, smaps),
        kernel::TracepointId::SysExit);
    if (!vr)
        state.SkipWithError(vr.error.c_str());

    auto [fd, sock] = kernel.installSocket(pid, 1);
    sock->setTxHandler([](kernel::Message &&) {});
    kernel.spawnThread(pid,
                       [fd = fd](kernel::Kernel &k,
                                 kernel::Tid tid) -> kernel::Task {
                           const kernel::Fd epfd = k.epollCreate(tid);
                           k.epollCtlAdd(tid, epfd, fd);
                           for (;;) {
                               co_await k.epollWait(tid, epfd, 4, -1);
                               auto rx = co_await k.recv(tid, fd);
                               if (!rx.ok)
                                   continue;
                               co_await k.send(tid, fd, kernel::Message{});
                           }
                       });
    auto *sk = sock.get();
    for (auto _ : state) {
        sk->deliver(kernel::Message{}, sim.now());
        sim.runFor(sim::milliseconds(1));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatedSyscallRoundTrip);

} // namespace

BENCHMARK_MAIN();
