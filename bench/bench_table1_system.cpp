/**
 * @file
 * Table I — system specification. Prints both evaluation-server presets
 * and the CPU-model parameters derived from them, and sanity-runs one
 * tiny experiment on each to show the presets are usable.
 */

#include <cstdio>

#include "bench_util.hh"
#include "kernel/system_spec.hh"

int
main()
{
    using namespace reqobs;
    bench::printHeader("Table I: SYSTEM SPECIFICATION");

    for (const auto &spec :
         {kernel::amdEpyc7302(), kernel::intelXeonE52620()}) {
        std::printf("%s\n", kernel::formatSystemSpec(spec).c_str());
    }

    bench::printHeader("Sanity: data-caching @ 50% on both presets");
    std::printf("%-8s %12s %12s %10s\n", "server", "RPS_Real", "RPS_Obsv",
                "p99(ms)");
    for (const auto &spec :
         {kernel::amdEpyc7302(), kernel::intelXeonE52620()}) {
        core::ExperimentConfig cfg =
            bench::benchConfig(workload::workloadByName("data-caching"));
        cfg.system = spec;
        const auto r = bench::runPoint(cfg, 0.5);
        std::printf("%-8s %12.1f %12.1f %10.3f\n", spec.name.c_str(),
                    r.achievedRps, r.observedRps, r.p99Ns / 1e6);
    }
    return 0;
}
