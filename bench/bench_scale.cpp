/**
 * @file
 * Scale proof for the native engine + batched pipeline: drive one
 * simulated machine past 10^7 syscalls/sec of wall-clock event
 * processing with the full multi-tenant probe set attached (tenant
 * duration pair, tenant send/recv delta, heavy-hitter sketch), then
 * sweep a 16-machine cluster. Events enter through
 * Kernel::dispatchRawBatch as structure-of-arrays bursts — the
 * amortised path — with the scalar per-event path measured alongside
 * and checked byte-identical on every probe-visible output.
 *
 * Like bench_perf, every number here is a host wall-clock measurement;
 * the simulated outputs are engine- and batching-invariant (asserted
 * inline below and in tests/scale_test.cc).
 *
 * Flags: --json <path> (default BENCH_scale.json), --floor <ev/s>
 * (exit 1 if the headline machine misses the floor), --syscalls <n>
 * (headline storm size, default 12M).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "core/cluster.hh"
#include "ebpf/maps.hh"
#include "ebpf/probes.hh"
#include "ebpf/runtime.hh"
#include "kernel/kernel.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"
#include "workload/config.hh"

namespace {

using namespace reqobs;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

// x86-64 syscall numbers, matching the probe library's vocabulary.
constexpr std::int64_t kSendto = 44;
constexpr std::int64_t kRecvfrom = 45;
constexpr std::int64_t kEpollWait = 232;
constexpr std::int64_t kWrite = 1;

constexpr std::uint32_t kTenants = 4;

/** One machine: sim + kernel + runtime with the tenant probe set. */
struct Rig
{
    std::unique_ptr<sim::Simulation> sim;
    std::unique_ptr<kernel::Kernel> kernel;
    std::unique_ptr<ebpf::EbpfRuntime> rt;
    ebpf::probes::DurationMaps dur;
    ebpf::probes::DeltaMaps delta;
    int sketchFd = -1;
};

Rig
makeTenantRig(ebpf::ExecEngine engine, std::uint32_t batch_cpus)
{
    Rig r;
    r.sim = std::make_unique<sim::Simulation>(1);
    r.kernel = std::make_unique<kernel::Kernel>(*r.sim);
    ebpf::RuntimeConfig rc;
    rc.engine = engine;
    rc.batchCpus = batch_cpus;
    r.rt = std::make_unique<ebpf::EbpfRuntime>(*r.kernel, rc);

    ebpf::probes::TenantSet ts;
    ts.tgids = {1000, 2000, 3000, 4000};
    ts.pollSyscalls = {kEpollWait, kEpollWait, kEpollWait, kEpollWait};
    const std::vector<std::int64_t> family{kSendto, kRecvfrom};

    r.dur = ebpf::probes::createTenantDurationMaps(*r.rt, kTenants,
                                                   "scale.dur");
    r.delta = ebpf::probes::createTenantDeltaMaps(*r.rt, kTenants,
                                                  "scale.delta");
    r.sketchFd = ebpf::probes::createTenantSketchMap(*r.rt, 4, 64, "scale");

    const auto v1 = r.rt->loadAndAttach(
        ebpf::probes::buildTenantDurationEnter(*r.rt, ts, r.dur),
        kernel::TracepointId::SysEnter);
    const auto v2 = r.rt->loadAndAttach(
        ebpf::probes::buildTenantDurationExit(*r.rt, ts, r.dur),
        kernel::TracepointId::SysExit);
    const auto v3 = r.rt->loadAndAttach(
        ebpf::probes::buildTenantDeltaExit(*r.rt, ts, family, r.delta),
        kernel::TracepointId::SysExit);
    const auto v4 = r.rt->loadAndAttach(
        ebpf::probes::buildTenantHeavyHitter(*r.rt, ts, family, r.sketchFd),
        kernel::TracepointId::SysExit);
    if (!v1 || !v2 || !v3 || !v4)
        sim::fatal("bench_scale: tenant probe set failed to load");
    return r;
}

/**
 * Precomputed storm columns: 2/3 of events from the four monitored
 * tenants, 1/3 background noise from unmonitored tgids, syscall mix
 * rotating send/recv/poll/write across 8 threads per process. Only the
 * timestamp columns are rewritten per round.
 */
struct Storm
{
    std::vector<std::int64_t> sys, rets;
    std::vector<kernel::PidTgid> pids;
    std::vector<sim::Tick> enterTs, exitTs;

    std::size_t size() const { return sys.size(); }
};

Storm
makeStorm(std::size_t batch)
{
    static constexpr std::uint32_t kTgids[6] = {1000, 2000, 9000,
                                                3000, 4000, 9001};
    static constexpr std::int64_t kSys[4] = {kSendto, kRecvfrom, kEpollWait,
                                             kWrite};
    Storm s;
    s.sys.resize(batch);
    s.rets.resize(batch);
    s.pids.resize(batch);
    s.enterTs.resize(batch);
    s.exitTs.resize(batch);
    for (std::size_t i = 0; i < batch; ++i) {
        const std::uint32_t tgid = kTgids[i % 6];
        const std::uint32_t tid =
            tgid + 1 + static_cast<std::uint32_t>((i / 6) % 8);
        s.pids[i] = kernel::makePidTgid(tgid, tid);
        s.sys[i] = kSys[i % 4];
        s.rets[i] = 64;
    }
    return s;
}

/** Rewrite the timestamp columns for the round starting at @p base. */
void
stampRound(Storm &s, sim::Tick base)
{
    const std::size_t n = s.size();
    for (std::size_t i = 0; i < n; ++i)
        s.enterTs[i] = base + static_cast<sim::Tick>(i) * 200;
    const sim::Tick exit_base = base + static_cast<sim::Tick>(n) * 200 + 700;
    for (std::size_t i = 0; i < n; ++i)
        s.exitTs[i] = exit_base + static_cast<sim::Tick>(i) * 200;
}

/** Ticks one round advances the clock (next round's base offset). */
sim::Tick
roundSpan(const Storm &s)
{
    return static_cast<sim::Tick>(2 * s.size()) * 200 + 1400;
}

/** Run @p rounds storm rounds through the batched path. */
double
runBatched(Rig &r, Storm &s, std::uint64_t rounds)
{
    kernel::RawSyscallBatch en;
    en.point = kernel::TracepointId::SysEnter;
    en.n = s.size();
    en.syscalls = s.sys.data();
    en.pidTgids = s.pids.data();
    en.timestamps = s.enterTs.data();
    kernel::RawSyscallBatch ex = en;
    ex.point = kernel::TracepointId::SysExit;
    ex.rets = s.rets.data();
    ex.timestamps = s.exitTs.data();

    sim::Tick base = 1;
    const auto start = Clock::now();
    for (std::uint64_t round = 0; round < rounds; ++round) {
        stampRound(s, base);
        r.kernel->dispatchRawBatch(en);
        r.kernel->dispatchRawBatch(ex);
        base += roundSpan(s);
    }
    return secondsSince(start);
}

/** Same storm, scalar per-event dispatch (the pre-batching path). */
double
runScalar(Rig &r, Storm &s, std::uint64_t rounds)
{
    sim::Tick base = 1;
    const auto start = Clock::now();
    for (std::uint64_t round = 0; round < rounds; ++round) {
        stampRound(s, base);
        kernel::RawSyscallEvent ev;
        ev.point = kernel::TracepointId::SysEnter;
        for (std::size_t i = 0; i < s.size(); ++i) {
            ev.syscall = s.sys[i];
            ev.pidTgid = s.pids[i];
            ev.timestamp = s.enterTs[i];
            r.kernel->tracepoints().fire(ev);
        }
        ev.point = kernel::TracepointId::SysExit;
        for (std::size_t i = 0; i < s.size(); ++i) {
            ev.syscall = s.sys[i];
            ev.ret = s.rets[i];
            ev.pidTgid = s.pids[i];
            ev.timestamp = s.exitTs[i];
            r.kernel->tracepoints().fire(ev);
        }
        base += roundSpan(s);
    }
    return secondsSince(start);
}

/** Every probe-visible output of a tenant rig, for equivalence checks. */
struct Fingerprint
{
    std::uint64_t events = 0;
    std::uint64_t insns = 0;
    std::int64_t cost = 0;
    std::uint64_t mapFails = 0;
    std::uint64_t drops = 0;
    std::vector<ebpf::probes::SyscallStats> durStats, deltaStats;
    std::vector<std::pair<std::vector<std::uint8_t>, std::uint64_t>> top;

    bool operator==(const Fingerprint &o) const
    {
        auto statsEq = [](const std::vector<ebpf::probes::SyscallStats> &a,
                          const std::vector<ebpf::probes::SyscallStats> &b) {
            if (a.size() != b.size())
                return false;
            return a.empty() ||
                   std::memcmp(a.data(), b.data(),
                               a.size() *
                                   sizeof(ebpf::probes::SyscallStats)) == 0;
        };
        return events == o.events && insns == o.insns && cost == o.cost &&
               mapFails == o.mapFails && drops == o.drops &&
               statsEq(durStats, o.durStats) &&
               statsEq(deltaStats, o.deltaStats) && top == o.top;
    }
};

Fingerprint
fingerprint(const Rig &r)
{
    Fingerprint f;
    f.events = r.rt->eventsProcessed();
    f.insns = r.rt->insnsInterpreted();
    f.cost = r.rt->totalProbeCost();
    f.mapFails = r.rt->mapUpdateFails();
    f.drops = r.rt->ringbufDrops();
    for (std::uint32_t slot = 0; slot < kTenants; ++slot) {
        f.durStats.push_back(
            r.rt->arrayAt(r.dur.statsFd)
                .at<ebpf::probes::SyscallStats>(slot));
        f.deltaStats.push_back(
            r.rt->arrayAt(r.delta.statsFd)
                .at<ebpf::probes::SyscallStats>(slot));
    }
    f.top = r.rt->sketchAt(r.sketchFd).topK(kTenants);
    return f;
}

/** One measured configuration for the report/JSON. */
struct Row
{
    std::string label;
    std::uint64_t syscalls = 0;
    double seconds = 0.0;
    double syscallsPerSec = 0.0;
    double probeEventsPerSec = 0.0;
};

Row
measure(const std::string &label, ebpf::ExecEngine engine,
        std::uint64_t syscalls, std::size_t batch, bool batched,
        Fingerprint *fp = nullptr, std::uint32_t batch_cpus = 1)
{
    Rig r = makeTenantRig(engine, batch_cpus);
    Storm s = makeStorm(batch);
    const std::uint64_t rounds = std::max<std::uint64_t>(
        1, syscalls / batch);
    // Warm caches, branch history, and the hash map's bucket layout.
    (void)(batched ? runBatched(r, s, 1) : runScalar(r, s, 1));
    const std::uint64_t events0 = r.rt->eventsProcessed();
    const double secs =
        batched ? runBatched(r, s, rounds) : runScalar(r, s, rounds);
    Row row;
    row.label = label;
    row.syscalls = rounds * batch;
    row.seconds = secs;
    row.syscallsPerSec = static_cast<double>(row.syscalls) / secs;
    row.probeEventsPerSec =
        static_cast<double>(r.rt->eventsProcessed() - events0) / secs;
    if (fp)
        *fp = fingerprint(r);
    return row;
}

void
printRow(const Row &r)
{
    std::printf("  %-28s %10.2fs %14.0f %14.0f\n", r.label.c_str(),
                r.seconds, r.syscallsPerSec, r.probeEventsPerSec);
}

/**
 * Per-CPU sharding ablation: the plain Listing-1 duration pair with its
 * stats slab replaced by a PerCpuArrayMap, all events from one tenant
 * so every lane lands on the same slot — worst case for a shared
 * accumulator, best case for shards. Returns syscalls/sec and checks
 * the shard fold against the scalar total.
 */
double
perCpuAblation(std::uint32_t cpus, std::uint64_t syscalls,
               std::size_t batch, ebpf::probes::SyscallStats *folded)
{
    sim::Simulation sim(1);
    kernel::Kernel kernel(sim);
    ebpf::RuntimeConfig rc;
    rc.engine = ebpf::ExecEngine::Native;
    rc.batchCpus = cpus;
    ebpf::EbpfRuntime rt(kernel, rc);
    ebpf::probes::DurationMaps maps;
    maps.startFd = rt.createHashMap(sizeof(std::uint64_t),
                                    sizeof(std::uint64_t), 16384,
                                    "ablate.start");
    maps.statsFd = rt.createPerCpuArrayMap(
        sizeof(ebpf::probes::SyscallStats), 1, cpus, "ablate.stats");
    const auto v1 = rt.loadAndAttach(
        ebpf::probes::buildDurationEnter(rt, 1000, kEpollWait, maps),
        kernel::TracepointId::SysEnter);
    const auto v2 = rt.loadAndAttach(
        ebpf::probes::buildDurationExit(rt, 1000, kEpollWait, maps),
        kernel::TracepointId::SysExit);
    if (!v1 || !v2)
        sim::fatal("bench_scale: ablation probe failed to load");

    Storm s = makeStorm(batch);
    // One tenant, one syscall: every event takes the full probe path.
    for (std::size_t i = 0; i < batch; ++i) {
        s.pids[i] = kernel::makePidTgid(
            1000, 1001 + static_cast<std::uint32_t>(i % 32));
        s.sys[i] = kEpollWait;
    }

    kernel::RawSyscallBatch en;
    en.point = kernel::TracepointId::SysEnter;
    en.n = batch;
    en.syscalls = s.sys.data();
    en.pidTgids = s.pids.data();
    en.timestamps = s.enterTs.data();
    kernel::RawSyscallBatch ex = en;
    ex.point = kernel::TracepointId::SysExit;
    ex.rets = s.rets.data();
    ex.timestamps = s.exitTs.data();

    const std::uint64_t rounds =
        std::max<std::uint64_t>(1, syscalls / batch);
    sim::Tick base = 1;
    const auto start = Clock::now();
    for (std::uint64_t round = 0; round < rounds; ++round) {
        stampRound(s, base);
        kernel.dispatchRawBatch(en);
        kernel.dispatchRawBatch(ex);
        base += roundSpan(s);
    }
    const double secs = secondsSince(start);

    auto &stats = dynamic_cast<ebpf::PerCpuArrayMap &>(rt.mapAt(maps.statsFd));
    *folded = {};
    for (std::uint32_t cpu = 0; cpu < stats.cpus(); ++cpu) {
        const auto shard =
            stats.shardAt<ebpf::probes::SyscallStats>(cpu, 0);
        folded->count += shard.count;
        folded->sumNs += shard.sumNs;
        folded->sumSqQ += shard.sumSqQ;
    }
    return static_cast<double>(rounds * batch) / secs;
}

/**
 * One rung of the domain-engine ladder: a full cluster experiment
 * (machines, tenants, agents, client population — the real harness, not
 * the raw storm above) with load scaled to the fleet size so every
 * machine carries the same work at every rung.
 */
core::ClusterExperimentConfig
ladderConfig(unsigned machines, bool parallel)
{
    core::ClusterExperimentConfig cc;
    // Two co-located tenants so even the 1-machine rung runs the full
    // multi-tenant harness (never the degenerate single-tenant path).
    core::ClusterTenantSpec t1;
    t1.workload = workload::workloadByName("img-dnn");
    t1.offeredRps = 500.0 * machines;
    t1.requests = 800ull * machines;
    cc.tenants.push_back(std::move(t1));
    core::ClusterTenantSpec t2;
    t2.workload = workload::workloadByName("xapian");
    t2.offeredRps = 300.0 * machines;
    t2.requests = 500ull * machines;
    cc.tenants.push_back(std::move(t2));
    cc.machines = machines;
    cc.netem.delay = sim::microseconds(200);
    cc.netem.jitter = sim::microseconds(50);
    cc.netem.lossProbability = 0.005;
    cc.seed = 7;
    cc.clusterParallel = parallel;
    return cc;
}

struct EngineRow
{
    unsigned machines = 0;
    const char *engine = "";   ///< requested engine
    bool ranParallel = false;  ///< what actually executed
    double wallSeconds = 0.0;
    double aggSyscallsPerSec = 0.0; ///< simulated syscalls / wall sec
};

EngineRow
runLadderRung(unsigned machines, bool parallel)
{
    const core::ClusterExperimentConfig cc = ladderConfig(machines, parallel);
    const auto start = Clock::now();
    const core::ClusterExperimentResult res =
        core::runClusterExperiment(cc);
    EngineRow row;
    row.machines = machines;
    row.engine = parallel ? "parallel" : "serial";
    row.ranParallel = res.engineParallel;
    row.wallSeconds = secondsSince(start);
    row.aggSyscallsPerSec =
        static_cast<double>(res.syscalls) / row.wallSeconds;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = "BENCH_scale.json";
    double floor = 0.0;
    double par_min_speedup = 0.0;
    std::uint64_t headline_syscalls = 12000000;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else if (std::strcmp(argv[i], "--floor") == 0 && i + 1 < argc)
            floor = std::atof(argv[++i]);
        else if (std::strcmp(argv[i], "--par-min-speedup") == 0 &&
                 i + 1 < argc)
            par_min_speedup = std::atof(argv[++i]);
        else if (std::strcmp(argv[i], "--syscalls") == 0 && i + 1 < argc)
            headline_syscalls = std::strtoull(argv[++i], nullptr, 10);
    }
    constexpr std::size_t kBatch = 4096;

    bench::printHeader("Scale: one machine under a batched syscall storm");
    std::printf("tenant probe set: duration pair + send/recv delta + "
                "heavy hitter (4 tenants)\n");
    std::printf("  %-28s %11s %14s %14s\n", "configuration", "wall",
                "syscalls/s", "probe ev/s");

    // --- engine ladder, batched pipeline ---
    const Row ref = measure("reference + batch",
                            ebpf::ExecEngine::Reference,
                            headline_syscalls / 12, kBatch, true);
    printRow(ref);
    const Row xlt = measure("translated + batch",
                            ebpf::ExecEngine::Translated,
                            headline_syscalls / 3, kBatch, true);
    printRow(xlt);
    const Row nat = measure("native + batch", ebpf::ExecEngine::Native,
                            headline_syscalls, kBatch, true);
    printRow(nat);

    // --- batch vs scalar on the native engine, equivalence-checked ---
    Fingerprint fp_scalar, fp_batch;
    const Row nat_scalar =
        measure("native + scalar dispatch", ebpf::ExecEngine::Native,
                headline_syscalls / 4, kBatch, false, &fp_scalar);
    printRow(nat_scalar);
    const Row nat_same =
        measure("native + batch (same storm)", ebpf::ExecEngine::Native,
                headline_syscalls / 4, kBatch, true, &fp_batch);
    printRow(nat_same);
    if (!(fp_scalar == fp_batch))
        sim::fatal("bench_scale: batch/scalar outputs diverged");
    std::printf("  batch == scalar on every probe-visible output "
                "(counters, stats, sketch)\n");

    // --- per-CPU shard ablation ---
    ebpf::probes::SyscallStats fold1, fold4;
    const double shard1 =
        perCpuAblation(1, headline_syscalls / 4, kBatch, &fold1);
    const double shard4 =
        perCpuAblation(4, headline_syscalls / 4, kBatch, &fold4);
    if (fold1.count != fold4.count || fold1.sumNs != fold4.sumNs ||
        fold1.sumSqQ != fold4.sumSqQ)
        sim::fatal("bench_scale: per-CPU shard fold diverged");
    std::printf("\nper-CPU stats sharding (Listing-1 pair, every event "
                "hits slot 0)\n");
    std::printf("  %-28s %14.0f syscalls/s\n", "1 shard", shard1);
    std::printf("  %-28s %14.0f syscalls/s (fold == 1-shard totals)\n",
                "4 shards", shard4);

    // --- raw-storm thread sweep: M independent rigs, one OS thread
    // each. This measures host event-processing capacity only — every
    // rig is an isolated storm with no cluster harness, and on hosts
    // with fewer cores than machines the aggregate line is flat by
    // construction. The domain-engine ladder below is the scaling
    // measurement. ---
    std::printf("\nraw-storm thread sweep (host capacity, NOT cluster "
                "scaling; %llu syscalls per machine)\n",
                static_cast<unsigned long long>(headline_syscalls / 8));
    std::printf("  %-10s %-16s %12s %16s\n", "machines", "engine",
                "wall secs", "agg syscalls/s");
    std::vector<std::pair<unsigned, double>> cluster;
    for (unsigned machines : {1u, 2u, 4u, 8u, 16u}) {
        std::vector<std::unique_ptr<Rig>> rigs;
        std::vector<Storm> storms;
        for (unsigned m = 0; m < machines; ++m) {
            rigs.push_back(std::make_unique<Rig>(
                makeTenantRig(ebpf::ExecEngine::Native, 1)));
            storms.push_back(makeStorm(kBatch));
        }
        const std::uint64_t per_machine =
            std::max<std::uint64_t>(1, headline_syscalls / 8 / kBatch);
        const auto start = Clock::now();
        std::vector<std::thread> threads;
        for (unsigned m = 0; m < machines; ++m) {
            threads.emplace_back([&, m] {
                runBatched(*rigs[m], storms[m], per_machine);
            });
        }
        for (auto &t : threads)
            t.join();
        const double secs = secondsSince(start);
        const double agg =
            static_cast<double>(machines * per_machine * kBatch) / secs;
        std::printf("  %-10u %-16s %12.2f %16.0f\n", machines,
                    "native+batch", secs, agg);
        cluster.emplace_back(machines, agg);
    }

    // --- domain-engine ladder: the full cluster harness under the
    // serial engine and the parallel discrete-event engine. Load scales
    // with fleet size, so agg syscalls/s measures how fast the engine
    // chews through a proportionally larger cluster; efficiency is the
    // parallel/serial wall ratio at each rung. ---
    const unsigned host_cores = std::thread::hardware_concurrency();
    std::printf("\ndomain-engine ladder (full cluster harness, load "
                "proportional to fleet; host cores: %u)\n",
                host_cores);
    std::printf("  %-10s %-16s %12s %16s %10s\n", "machines", "engine",
                "wall secs", "agg syscalls/s", "speedup");
    std::vector<EngineRow> ladder;
    double serial1_agg = 0.0;
    double par8_agg = 0.0;
    for (unsigned machines : {1u, 2u, 4u, 8u, 16u}) {
        const EngineRow ser = runLadderRung(machines, false);
        const EngineRow par = runLadderRung(machines, true);
        if (!par.ranParallel)
            sim::fatal("bench_scale: parallel ladder rung fell back to "
                       "serial (lookahead misconfigured?)");
        if (machines == 1)
            serial1_agg = ser.aggSyscallsPerSec;
        if (machines == 8)
            par8_agg = par.aggSyscallsPerSec;
        std::printf("  %-10u %-16s %12.2f %16.0f %9s\n", machines,
                    ser.engine, ser.wallSeconds, ser.aggSyscallsPerSec,
                    "1.00x");
        char spd[32];
        std::snprintf(spd, sizeof(spd), "%.2fx",
                      ser.wallSeconds / par.wallSeconds);
        std::printf("  %-10u %-16s %12.2f %16.0f %9s\n", machines,
                    par.engine, par.wallSeconds, par.aggSyscallsPerSec,
                    spd);
        ladder.push_back(ser);
        ladder.push_back(par);
    }

    std::FILE *f = std::fopen(json_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "bench_scale: cannot write %s\n",
                     json_path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"batch\": %zu,\n", kBatch);
    auto emitRow = [f](const char *key, const Row &r, const char *sep) {
        std::fprintf(f,
                     "  \"%s\": {\"syscalls\": %llu, \"seconds\": %.3f, "
                     "\"syscalls_per_sec\": %.0f, "
                     "\"probe_events_per_sec\": %.0f}%s\n",
                     key, static_cast<unsigned long long>(r.syscalls),
                     r.seconds, r.syscallsPerSec, r.probeEventsPerSec, sep);
    };
    emitRow("reference_batch", ref, ",");
    emitRow("translated_batch", xlt, ",");
    emitRow("native_batch", nat, ",");
    emitRow("native_scalar", nat_scalar, ",");
    std::fprintf(f, "  \"batch_amortisation\": %.3f,\n",
                 nat_same.syscallsPerSec / nat_scalar.syscallsPerSec);
    std::fprintf(f, "  \"percpu_shards\": {\"one\": %.0f, \"four\": %.0f},\n",
                 shard1, shard4);
    std::fprintf(f, "  \"raw_storm_threads\": [\n");
    for (std::size_t i = 0; i < cluster.size(); ++i) {
        std::fprintf(f,
                     "    {\"machines\": %u, \"agg_syscalls_per_sec\": "
                     "%.0f}%s\n",
                     cluster[i].first, cluster[i].second,
                     i + 1 < cluster.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"host_cores\": %u,\n", host_cores);
    std::fprintf(f, "  \"cluster_engine_ladder\": [\n");
    for (std::size_t i = 0; i < ladder.size(); ++i) {
        const EngineRow &r = ladder[i];
        std::fprintf(f,
                     "    {\"machines\": %u, \"engine\": \"%s\", "
                     "\"wall_seconds\": %.3f, "
                     "\"agg_syscalls_per_sec\": %.0f}%s\n",
                     r.machines, r.engine, r.wallSeconds,
                     r.aggSyscallsPerSec,
                     i + 1 < ladder.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    const double par8_speedup =
        serial1_agg > 0.0 ? par8_agg / serial1_agg : 0.0;
    std::fprintf(f, "  \"parallel_8m_vs_serial_1m\": %.3f,\n",
                 par8_speedup);
    const bool gate_applies = par_min_speedup > 0.0 && host_cores >= 8;
    std::fprintf(f, "  \"parallel_gate\": \"%s\"\n",
                 par_min_speedup <= 0.0 ? "off"
                 : gate_applies         ? "enforced"
                                        : "skipped-small-host");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());

    if (floor > 0.0 && nat.syscallsPerSec < floor) {
        std::fprintf(stderr,
                     "bench_scale: FAIL %.0f syscalls/s below floor %.0f\n",
                     nat.syscallsPerSec, floor);
        return 1;
    }
    if (par_min_speedup > 0.0) {
        if (!gate_applies) {
            std::printf("parallel scaling gate SKIPPED: host has %u "
                        "cores (< 8); the 8-machine speedup gate needs "
                        "real parallelism to be meaningful\n",
                        host_cores);
        } else if (par8_speedup < par_min_speedup) {
            std::fprintf(stderr,
                         "bench_scale: FAIL 8-machine parallel aggregate "
                         "is %.2fx the 1-machine serial aggregate "
                         "(gate: >= %.2fx)\n",
                         par8_speedup, par_min_speedup);
            return 1;
        } else {
            std::printf("parallel scaling gate OK: 8-machine parallel = "
                        "%.2fx 1-machine serial (>= %.2fx)\n",
                        par8_speedup, par_min_speedup);
        }
    }
    return 0;
}
