/**
 * @file
 * Fault matrix: how much injected infrastructure misbehaviour the
 * in-kernel observability pipeline tolerates before the paper's headline
 * result (Eq. 1 R² >= ~0.94, Table II) breaks.
 *
 * Part 1 repeats the Fig. 2 correlation for every paper workload under
 * each fault class (kernel syscall faults, kernel timing faults, eBPF
 * runtime faults, network faults) and prints R² per cell.
 *
 * Part 2 sweeps the intensity of a combined fault plan on one workload
 * and reports the degradation of each observed signal: Eq. 1 (R² and
 * point error), Eq. 2 / Fig. 3 (CV²), and the Fig. 4 poll-duration
 * signal, alongside the injector's event counts and the agent's health.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hh"
#include "fault/fault.hh"

namespace {

using namespace reqobs;

/** Rows for the optional --json emission (accuracy + health pairs). */
bench::JsonRows g_json;

struct FaultClass
{
    std::string name;
    fault::FaultPlan plan;
    /** Front-door fault classes need a front door (and a small storm
     *  feeding it) to have anything to act on. */
    bool frontDoor = false;
};

std::vector<FaultClass>
faultClasses()
{
    std::vector<FaultClass> out;
    out.push_back({"clean", {}});

    fault::FaultPlan syscall;
    syscall.eintrProbability = 0.02;
    syscall.eagainProbability = 0.02;
    syscall.partialIoProbability = 0.02;
    out.push_back({"syscall", syscall});

    fault::FaultPlan timing;
    timing.spuriousWakeupProbability = 0.05;
    timing.clockJitterNs = sim::microseconds(5);
    out.push_back({"timing", timing});

    fault::FaultPlan ebpf_f;
    ebpf_f.mapUpdateFailProbability = 0.05;
    ebpf_f.ringbufDropProbability = 0.05;
    out.push_back({"ebpf", ebpf_f});

    fault::FaultPlan net_f;
    net_f.linkFlapPeriod = sim::milliseconds(400);
    net_f.linkFlapDownTime = sim::milliseconds(8);
    net_f.connResetProbability = 0.005;
    out.push_back({"net", net_f});

    fault::FaultPlan flood;
    flood.synFloodRate = 2000.0;
    out.push_back({"synflood", flood, true});

    fault::FaultPlan backlog;
    backlog.acceptBacklogOverflowProbability = 0.05;
    out.push_back({"backlog", backlog, true});

    fault::FaultPlan rto;
    rto.retransmitStormProbability = 0.05;
    out.push_back({"rto", rto, true});

    return out;
}

/** bench::sweep with a fault plan applied to every level. */
std::vector<bench::LevelResult>
faultSweep(const workload::WorkloadConfig &wl,
           const std::vector<double> &fractions,
           const fault::FaultPlan &plan, bool front_door = false)
{
    core::ExperimentConfig base = bench::benchConfig(wl);
    base.fault = plan;
    if (front_door) {
        // A light short-lived-connection stream through the door gives
        // the injected front-door faults flows to act on. Rates scale
        // with the workload's own throughput so slow workloads (whose
        // sweep windows span minutes of simulated time) don't drown in
        // front-door events, and fast ones still see thousands of flows.
        const double sat = wl.saturationRps;
        base.frontDoor.enabled = true;
        base.frontDoor.stormEnabled = true;
        base.frontDoor.storm.connRps =
            std::max(1.0, std::min(1000.0, 0.05 * sat));
        if (base.fault.synFloodRate > 0.0)
            base.fault.synFloodRate =
                std::max(1.0, std::min(2000.0, 0.10 * sat));
    }
    return core::runSweepParallel(base, fractions, bench::benchScaling());
}

std::uint64_t
totalInjected(const fault::FaultCounts &c)
{
    return c.eintr + c.eagain + c.partialOps + c.spuriousWakeups +
           c.mapUpdateFails + c.ringbufDrops + c.attachFails +
           c.linkFlapHolds + c.connResets + c.synFloodConns +
           c.backlogOverflows + c.retransmitDrops;
}

/** Combined plan scaled by one intensity knob in [0, 1]. */
fault::FaultPlan
combinedPlan(double x)
{
    fault::FaultPlan p;
    p.eintrProbability = x;
    p.eagainProbability = x;
    p.partialIoProbability = x;
    p.spuriousWakeupProbability = 2.0 * x;
    p.clockJitterNs = static_cast<sim::Tick>(x * 100.0 * 1000.0); // <=100us
    p.mapUpdateFailProbability = x;
    p.ringbufDropProbability = x;
    p.connResetProbability = x / 10.0;
    if (x > 0.0) {
        p.linkFlapPeriod = sim::milliseconds(400);
        p.linkFlapDownTime =
            static_cast<sim::Tick>(x * 50.0 * 1e6); // <=10ms at x=0.2
    }
    return p;
}

void
partOneMatrix()
{
    bench::printHeader("Fault matrix: Eq. 1 R^2 per workload per fault "
                       "class");
    const auto classes = faultClasses();
    const std::vector<double> fractions = {0.4, 0.6, 0.8, 1.0};

    std::vector<std::string> cols;
    for (const auto &fc : classes)
        cols.push_back(fc.name);
    bench::MatrixTable::header("workload", cols);

    std::vector<std::uint64_t> injected(classes.size(), 0);
    std::vector<double> degraded(classes.size(), 0.0);
    for (const auto &wl : workload::paperWorkloads()) {
        bench::MatrixTable::rowLabel(wl.name);
        for (std::size_t i = 0; i < classes.size(); ++i) {
            const auto levels = faultSweep(wl, fractions, classes[i].plan,
                                           classes[i].frontDoor);
            const double r2 = bench::fitObsVsReal(levels).r2;
            const double deg = bench::degradedFraction(levels);
            bench::MatrixTable::cell(r2);
            for (const auto &lvl : levels)
                injected[i] += totalInjected(lvl.result.faultCounts);
            degraded[i] += deg;
            g_json.add("matrix", wl.name + "/" + classes[i].name, r2, deg);
        }
        bench::MatrixTable::endRow();
    }
    const double nwl =
        static_cast<double>(workload::paperWorkloads().size());
    std::vector<std::uint64_t> per_sweep;
    for (std::size_t i = 0; i < classes.size(); ++i)
        per_sweep.push_back(injected[i] /
                            workload::paperWorkloads().size());
    bench::MatrixTable::rowU64("faults/sweep", per_sweep);
    // Accuracy numbers always travel with pipeline-health numbers: the
    // mean fraction of samples whose agent self-diagnostics flagged
    // degradation (lost events, missing probes, torn windows).
    std::vector<double> deg_pct;
    for (std::size_t i = 0; i < classes.size(); ++i)
        deg_pct.push_back(100.0 * degraded[i] / nwl);
    bench::MatrixTable::rowF1("degraded%", deg_pct);

    std::printf("\nExpected shape: the clean column reproduces Fig. 2; "
                "the hardened pipeline\nholds R^2 near the clean value "
                "for every class at these (realistic) rates.\n");
}

void
partTwoIntensity()
{
    bench::printHeader("Fault intensity sweep (data-caching): signal "
                       "degradation");
    const auto wl = workload::workloadByName("data-caching");
    const std::vector<double> fractions = {0.4, 0.6, 0.8, 1.0};
    const std::vector<double> intensities = {0.0, 0.01, 0.05, 0.2};

    std::string deg_line = "degraded samples:";
    std::printf("%-9s %8s %9s %9s %10s %8s %8s %9s\n", "intensity", "R^2",
                "rps_err%", "cv2@0.8", "poll_us", "stale", "mapfail",
                "injected");
    bench::dashRule();
    for (double x : intensities) {
        const auto levels = faultSweep(wl, fractions, combinedPlan(x));
        const double r2 = bench::fitObsVsReal(levels).r2;
        const double deg = bench::degradedFraction(levels);
        {
            char buf[48];
            std::snprintf(buf, sizeof(buf), " x=%.2f %.1f%%", x,
                          100.0 * deg);
            deg_line += buf;
            char label[32];
            std::snprintf(label, sizeof(label), "intensity-%.2f", x);
            g_json.add("intensity", label, r2, deg);
        }

        // The 0.8-load level carries the Fig. 3/4 shaped signals.
        const auto &mid = levels[2].result;
        double cv2 = 0.0;
        int n = 0;
        for (const auto &s : mid.samples) {
            if (s.send.count > 0) {
                cv2 += s.send.cvSquared();
                ++n;
            }
        }
        if (n > 0)
            cv2 /= n;
        const double err =
            mid.achievedRps > 0.0
                ? 100.0 * (mid.observedRps - mid.achievedRps) /
                      mid.achievedRps
                : 0.0;
        std::uint64_t injected = 0, stale = 0, mapfail = 0;
        for (const auto &lvl : levels) {
            injected += totalInjected(lvl.result.faultCounts);
            stale += lvl.result.agentHealth.staleWindows;
            mapfail += lvl.result.probeMapUpdateFails;
        }
        std::printf("%-9.2f %8.4f %9.2f %9.3f %10.1f %8llu %8llu %9llu\n",
                    x, r2, err, cv2, mid.pollMeanDurNs / 1e3,
                    static_cast<unsigned long long>(stale),
                    static_cast<unsigned long long>(mapfail),
                    static_cast<unsigned long long>(injected));
    }

    std::printf("%s\n", deg_line.c_str());

    std::printf("\nExpected shape: R^2 and the rps error stay near their "
                "clean values through\nmoderate intensities; heavy clock "
                "jitter (intensity 0.2 => +/-20us on every\ntracepoint "
                "timestamp) is what finally smears the Eq. 1 windows.\n");
}

void
partThreeAttachFailure()
{
    bench::printHeader("Partial-operation mode: forced probe-attach "
                       "failure (data-caching, 0.8 load)");
    const auto wl = workload::workloadByName("data-caching");

    struct Scenario
    {
        std::string label;
        std::vector<std::string> programs;
    };
    const std::vector<Scenario> scenarios = {
        {"all probes live", {"(none)"}},
        {"send probe dead", {"send.delta_exit"}},
        {"send+recv dead", {"send.delta_exit", "recv.delta_exit"}},
        {"all probes dead", {}},
    };

    std::printf("%-16s %5s %5s %5s %10s %10s %8s %8s\n", "scenario",
                "send", "recv", "poll", "rps_obsv", "poll_us", "samples",
                "stale");
    bench::dashRule();
    for (const auto &sc : scenarios) {
        core::ExperimentConfig cfg = bench::benchConfig(wl);
        if (!(sc.programs.size() == 1 && sc.programs[0] == "(none)")) {
            cfg.fault.attachFailProbability = 1.0;
            cfg.fault.attachFailPrograms = sc.programs;
        }
        const auto r = bench::runPoint(cfg, 0.8);
        const auto &h = r.agentHealth;
        std::printf("%-16s %5s %5s %5s %10.1f %10.1f %8zu %8llu\n",
                    sc.label.c_str(), h.sendAttached ? "up" : "DOWN",
                    h.recvAttached ? "up" : "DOWN",
                    h.pollAttached ? "up" : "DOWN", r.observedRps,
                    r.pollMeanDurNs / 1e3, r.samples.size(),
                    static_cast<unsigned long long>(h.staleWindows));
    }

    std::printf("\nExpected shape: each lost probe family blanks its own "
                "signal and nothing\nelse; with everything dead the agent "
                "idles at max sampling backoff instead\nof crashing.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path = bench::jsonPathArg(argc, argv);
    partOneMatrix();
    partTwoIntensity();
    partThreeAttachFailure();
    if (!json_path.empty())
        g_json.write(json_path);
    return 0;
}
