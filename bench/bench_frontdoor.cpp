/**
 * @file
 * Host-network front door under connection storms: what the paper's
 * syscall-level metrics can and cannot see, and what acting on the
 * front-door signal buys.
 *
 * Part 1 — rank blindness. A victim tenant (data-caching) runs at 95%
 * load over persistent connections while a short-lived-connection storm
 * of increasing intensity hammers a front-door listener on the same
 * machine. The storm's accept/serve work steals CPU, so the victim's
 * ground-truth p99 climbs with storm intensity — but the victim's
 * syscall footprint barely changes, so the Eq. 1 observed-RPS estimate
 * stays flat and loses rank correlation with the victim's QoS. The
 * front-door latency (ingress -> accept, the quantity the sock_accept /
 * net_rx_enqueue eBPF probe pair measures) is monotone in storm
 * intensity and keeps the rank.
 *
 * Part 2 — open vs closed loop. Four listeners take a storm heavy
 * enough to pin four acceptor cores; at 85% victim load that is
 * sustained machine overload and the victim's QoS collapses. Closed
 * loop, the FleetController watches the front-door drop rate and clamps
 * the tenant's accept budget, turning expensive post-accept service
 * into cheap pre-accept drops; the victim's QoS holds.
 *
 * Exit is non-zero if any printed check fails (same contract as
 * bench_control).
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "client/load_generator.hh"
#include "client/storm_generator.hh"
#include "core/controller.hh"
#include "workload/machine.hh"

namespace {

using namespace reqobs;

bench::JsonRows g_json;
int g_failures = 0;

void
check(bool ok, const char *what)
{
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
    if (!ok)
        ++g_failures;
}

/** Kendall rank correlation over all pairs (ties count as neither). */
double
kendallTau(const std::vector<double> &x, const std::vector<double> &y)
{
    int concordant = 0, discordant = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        for (std::size_t j = i + 1; j < x.size(); ++j) {
            const double s = (x[j] - x[i]) * (y[j] - y[i]);
            if (s > 0.0)
                ++concordant;
            else if (s < 0.0)
                ++discordant;
        }
    }
    const int pairs = concordant + discordant;
    return pairs > 0 ? static_cast<double>(concordant - discordant) / pairs
                     : 0.0;
}

/**
 * An edge front-end host: same family as the paper's AMD server but
 * 8 cores, so acceptor threads pinned by a storm are a meaningful
 * fraction of the machine (on the 2-socket SMT evaluation box a storm
 * would need dozens of listeners to matter).
 */
kernel::SystemSpec
edgeHostSpec()
{
    kernel::SystemSpec spec = kernel::amdEpyc7302();
    spec.sockets = 1;
    spec.coresPerSocket = 8;
    spec.threadsPerCore = 1;
    return spec;
}

// ---------------------------------------------------------------------------
// Part 1: storm-intensity sweep, signal ranks.
// ---------------------------------------------------------------------------

core::ExperimentConfig
stormPointConfig(double storm_conn_rps)
{
    const auto wl = workload::workloadByName("data-caching");
    core::ExperimentConfig cfg = bench::benchConfig(wl, /*seed=*/21);
    cfg.system = edgeHostSpec();
    cfg.offeredRps = 0.95 * wl.saturationRps;
    cfg.requests = 30000;
    cfg.warmup = sim::milliseconds(200);

    cfg.frontDoor.enabled = true;
    // Storm requests are cheap individually but the acceptors serve them
    // inline: past ~1/serviceDemand conns/sec per listener the acceptor
    // cores pin and the backlog (then the retransmit path) takes the
    // overflow. Two listeners bound the storm at two of eight cores.
    cfg.frontDoor.listener.serviceDemand = sim::microseconds(200);
    cfg.frontDoor.listeners = 2;
    if (storm_conn_rps > 0.0) {
        cfg.frontDoor.stormEnabled = true;
        cfg.frontDoor.storm.connRps = storm_conn_rps;
        cfg.frontDoor.storm.warmup = cfg.warmup;
    }
    return cfg;
}

void
partOneStormRank()
{
    bench::printHeader("Storm sweep: victim QoS vs Eq. 1 vs front-door "
                       "latency (data-caching @ 0.95 load)");
    // Levels chosen below the machine's saturation knee: the victim's
    // tail degrades monotonically while its throughput (and therefore
    // its syscall rate, and therefore Eq. 1) holds completely still.
    // Past ~6k conns/sec the machine saturates and the victim's
    // throughput collapses too — a storm Eq. 1 does see, eventually,
    // once the damage is done.
    const std::vector<double> storm_levels = {0.0, 2000.0, 3500.0, 5000.0};

    std::vector<core::ExperimentConfig> configs;
    for (double s : storm_levels)
        configs.push_back(stormPointConfig(s));
    const auto results = core::runExperimentsParallel(configs);

    std::printf("%-10s %9s %9s %10s %10s %9s %9s %9s\n", "storm_cps",
                "achieved", "rps_obsv", "vict_p99ms", "door_p99ms",
                "accepted", "drops", "retrans");
    bench::dashRule();
    std::vector<double> victim_p99, obs_rps, door_p99;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        victim_p99.push_back(static_cast<double>(r.p99Ns));
        obs_rps.push_back(r.observedRps);
        door_p99.push_back(static_cast<double>(r.frontDoorAcceptP99Ns));
        std::printf("%-10.0f %9.1f %9.1f %10.2f %10.2f %9llu %9llu %9llu\n",
                    storm_levels[i], r.achievedRps, r.observedRps,
                    static_cast<double>(r.p99Ns) / 1e6,
                    static_cast<double>(r.frontDoorAcceptP99Ns) / 1e6,
                    static_cast<unsigned long long>(
                        r.frontDoorCounts.accepted),
                    static_cast<unsigned long long>(
                        r.frontDoorCounts.drops()),
                    static_cast<unsigned long long>(
                        r.frontDoorCounts.retransmits));
    }

    // Rank structure: the front-door signal should order the levels the
    // same way the victim's ground-truth tail does; Eq. 1 should not.
    const double tau_door = kendallTau(door_p99, victim_p99);
    const double tau_obs = kendallTau(obs_rps, victim_p99);
    double obs_min = obs_rps[0], obs_max = obs_rps[0];
    for (double v : obs_rps) {
        obs_min = std::min(obs_min, v);
        obs_max = std::max(obs_max, v);
    }
    const double obs_spread =
        obs_max > 0.0 ? (obs_max - obs_min) / obs_max : 0.0;
    std::printf("kendall tau vs victim p99: front-door=%.2f eq1=%.2f "
                "(eq1 spread %.1f%%)\n",
                tau_door, tau_obs, 100.0 * obs_spread);

    bool door_monotone = true;
    for (std::size_t i = 1; i < door_p99.size(); ++i)
        door_monotone = door_monotone && door_p99[i] >= door_p99[i - 1];
    check(victim_p99.back() > 1.5 * victim_p99.front(),
          "storm degrades the victim's ground-truth p99 (>1.5x)");
    check(door_monotone && door_p99.back() > 0.0,
          "front-door latency is monotone in storm intensity");
    check(obs_spread < 0.15,
          "Eq. 1 observed RPS is flat across storm levels (<15% spread)");
    check(tau_door >= 2.0 / 3.0,
          "front-door latency keeps rank with victim p99 (tau >= 2/3)");
    check(tau_door > tau_obs,
          "Eq. 1 loses the rank the front-door signal keeps");
    g_json.add("storm-rank", "door-tau", tau_door, obs_spread);
    g_json.add("storm-rank", "eq1-tau", tau_obs, obs_spread);

    std::printf("\nExpected shape: the victim's syscall stream never sees "
                "the storm (it all\nhappens before accept returns), so "
                "RPS_obsv stays put while the victim's\ntail climbs; the "
                "ingress->accept latency the front-door probes measure is\n"
                "the signal that still ranks the damage.\n");
}

// ---------------------------------------------------------------------------
// Part 2: open vs closed loop under a saturating storm.
// ---------------------------------------------------------------------------

constexpr unsigned kStormListeners = 4;

struct LoopOutcome
{
    double achievedRps = 0.0;
    std::uint64_t p99Ns = 0;
    bool qosViolated = false;
    net::FrontDoorCounts door;
    std::uint64_t stormEstablished = 0;
    core::ControllerStats ctrl;
};

LoopOutcome
runLoop(bool closed_loop)
{
    const auto wl = workload::workloadByName("data-caching");
    sim::Simulation sim(31);

    kernel::KernelConfig kc;
    kc.cpu = edgeHostSpec().toCpuConfig();
    workload::Machine machine(sim, kc);
    workload::ServerApp &app = machine.addTenant(wl);

    const net::NetemConfig netem;
    const net::TcpConfig tcp;
    client::ClientConfig cc;
    cc.offeredRps = 0.85 * wl.saturationRps;
    cc.maxRequests = 50000;
    cc.warmup = sim::milliseconds(300);
    cc.qosLatency = core::defaultQosLatency(wl, netem);
    client::LoadGenerator gen(sim, app, netem, tcp, cc, nullptr);

    net::FrontDoor &door = machine.enableFrontDoor(net::FrontDoorConfig{});
    net::ListenerConfig lc;
    lc.serviceDemand = sim::microseconds(200);
    for (unsigned i = 0; i < kStormListeners; ++i)
        machine.addFrontDoorListener(0, lc);

    // Four storms, each beyond its acceptor's ~5k conns/sec service
    // capacity: four pinned cores of eight on top of the victim's load.
    std::vector<std::unique_ptr<client::StormGenerator>> storms;
    for (unsigned i = 0; i < kStormListeners; ++i) {
        client::StormConfig sc;
        sc.connRps = 8000.0;
        sc.listener = i;
        sc.warmup = cc.warmup;
        storms.push_back(std::make_unique<client::StormGenerator>(
            sim, door, netem, tcp, sc));
    }

    core::ControllerConfig ccfg;
    ccfg.enabled = closed_loop;
    ccfg.tickPeriod = sim::milliseconds(50);
    ccfg.budgetOnDropRate = 500.0;
    ccfg.budgetOffDropRate = 50.0;
    ccfg.budgetClampRps = 800.0;
    ccfg.budgetCooldown = sim::milliseconds(200);
    // Single machine, front-door signal only: pin the other actuators'
    // bands shut (their engage conditions never hold at slack=1/var=0).
    ccfg.maxWorkers = ccfg.baseWorkers;
    std::unique_ptr<core::FleetController> ctrl;
    if (closed_loop) {
        core::FleetActuators act;
        act.setAcceptBudget = [&door](std::size_t, double rps) {
            for (unsigned i = 0; i < kStormListeners; ++i)
                door.setAcceptBudget(i,
                                     rps > 0.0 ? rps / kStormListeners : 0.0);
        };
        ctrl = std::make_unique<core::FleetController>(sim, ccfg, 1, 1,
                                                       std::move(act));
        auto last_drops = std::make_shared<std::uint64_t>(0);
        const sim::Tick period = ccfg.tickPeriod;
        ctrl->setInputProvider([&door, &sim, last_drops, period] {
            const std::uint64_t drops = door.totals().drops();
            core::ControllerInput in;
            in.machine = 0;
            in.tenant = 0;
            in.t = sim.now();
            in.frontDoorDropRate =
                static_cast<double>(drops - *last_drops) /
                sim::toSeconds(period);
            *last_drops = drops;
            for (unsigned i = 0; i < kStormListeners; ++i)
                in.frontDoorP99 = std::max(
                    in.frontDoorP99, door.acceptLatencies(i).p99());
            return std::vector<core::ControllerInput>{in};
        });
    }

    machine.start();
    gen.start();
    for (auto &s : storms)
        s->start();
    if (ctrl)
        ctrl->start();

    const sim::Tick horizon =
        cc.warmup + sim::seconds(1) + sim::milliseconds(500);
    sim.runUntil(horizon);

    LoopOutcome out;
    out.achievedRps = gen.achievedRps();
    out.p99Ns = gen.latencies().p99();
    out.qosViolated = gen.qosViolated();
    out.door = door.totals();
    for (const auto &s : storms)
        out.stormEstablished += s->established();
    if (ctrl) {
        out.ctrl = ctrl->stats();
        ctrl->stop();
    }
    for (auto &s : storms)
        s->stop();
    gen.stop();
    return out;
}

void
printLoopRow(const char *label, const LoopOutcome &o)
{
    std::printf("%-8s %9.1f %10.2f %6s %9llu %9llu %9llu %7llu\n", label,
                o.achievedRps, static_cast<double>(o.p99Ns) / 1e6,
                o.qosViolated ? "VIOL" : "held",
                static_cast<unsigned long long>(o.door.accepted),
                static_cast<unsigned long long>(o.door.drops()),
                static_cast<unsigned long long>(o.door.budgetDrops),
                static_cast<unsigned long long>(o.ctrl.budgetClamps));
}

void
partTwoClosedLoop()
{
    bench::printHeader("Saturating storm: open loop vs accept-budget "
                       "closed loop (data-caching @ 0.85 load)");
    std::printf("%-8s %9s %10s %6s %9s %9s %9s %7s\n", "loop", "achieved",
                "vict_p99ms", "qos", "accepted", "drops", "bgt_drops",
                "clamps");
    bench::dashRule();

    const LoopOutcome open = runLoop(false);
    printLoopRow("open", open);
    const LoopOutcome closed = runLoop(true);
    printLoopRow("closed", closed);

    check(open.qosViolated, "open loop: storm violates the victim's QoS");
    check(!closed.qosViolated, "closed loop: victim's QoS holds");
    check(closed.ctrl.budgetClamps >= 1,
          "controller clamped the accept budget at least once");
    check(closed.door.budgetDrops > 0,
          "clamp turned storm conns into pre-accept budget drops");
    check(closed.door.accepted < open.door.accepted,
          "closed loop accepts (and serves) fewer storm conns");
    const double verdict =
        (open.qosViolated && !closed.qosViolated) ? 1.0 : 0.0;
    g_json.add("storm-control", "open-violates+closed-holds", verdict,
               static_cast<double>(closed.ctrl.budgetClamps));

    std::printf("\nExpected shape: open loop the four acceptor threads pin "
                "four of eight cores\nand the machine runs ~120%% committed "
                "for the whole storm, so the victim's\ntail collapses; "
                "closed loop "
                "the drop-rate signal trips the budget clamp within a\nfew "
                "ticks and the storm is turned away before it costs accept/"
                "serve CPU.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path = bench::jsonPathArg(argc, argv);
    partOneStormRank();
    partTwoClosedLoop();
    if (!json_path.empty())
        g_json.write(json_path);
    if (g_failures > 0) {
        std::printf("\n%d check(s) FAILED\n", g_failures);
        return 1;
    }
    std::printf("\nall checks passed\n");
    return 0;
}
