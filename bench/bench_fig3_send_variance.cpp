/**
 * @file
 * Fig. 3 — variance of inter-send-syscall deltas vs load.
 *
 * For each workload we sweep offered load across the saturation knee and
 * print, per level: normalized RPS (x-axis), the raw Eq. 2 variance, the
 * min-max-normalized variance (the paper's y-axis) and the scale-free
 * CV² form. The "QoS" column marks the level where client p99 first
 * crosses the threshold — the paper's vertical line. The variance must
 * rise as that line is crossed.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace reqobs;
    bench::printHeader(
        "Fig. 3: normalized var(delta_t_send) under varying load");

    for (const auto &wl : workload::paperWorkloads()) {
        const auto levels = bench::sweep(wl, bench::kneeFractions());
        std::vector<double> variances;
        for (const auto &lvl : levels)
            variances.push_back(lvl.result.sendVarNs2);
        const auto norm = stats::normalize(variances);
        const int knee = bench::qosKneeIndex(levels);

        std::printf("\n--- %s (QoS crossed at level %d) ---\n",
                    wl.name.c_str(), knee);
        std::printf("%6s %10s %12s %10s %8s %5s\n", "load", "normRPS",
                    "var(ns^2)", "normVar", "CV^2", "QoS");
        double max_rps = 1e-9;
        for (const auto &lvl : levels)
            max_rps = std::max(max_rps, lvl.result.achievedRps);
        for (std::size_t i = 0; i < levels.size(); ++i) {
            const auto &r = levels[i].result;
            const double mean = r.observedRps > 0 ? 1e9 / r.observedRps
                                                  : 0.0;
            const double cv2 =
                mean > 0 ? r.sendVarNs2 / (mean * mean) : 0.0;
            std::printf("%6.2f %10.3f %12.3e %10.3f %8.2f %5s\n",
                        levels[i].loadFraction, r.achievedRps / max_rps,
                        r.sendVarNs2, norm[i], cv2,
                        r.qosViolated ? "FAIL" : "ok");
        }
    }

    std::printf("\nExpected shape (paper): variance low/flat below the QoS "
                "line, rising\nsharply as it is breached (queue contention "
                "clumps the send syscalls).\n");
    return 0;
}
