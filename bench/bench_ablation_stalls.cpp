/**
 * @file
 * Ablation — the saturation-contention model behind Fig. 3.
 *
 * DESIGN.md substitutes the paper's real-machine contention (lock
 * convoys, GC, softirq storms under backlog) with periodic machine-wide
 * stalls scaled to the work unit. This bench shows what each knob does:
 * with stalls disabled the variance knee disappears (pooled departures
 * stay Poisson-like, CV² ~ 1 at every load), and the knee strength
 * scales with the stall duration multiple.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace reqobs;

namespace {

double
cv2At(workload::WorkloadConfig wl, double load, std::uint64_t seed)
{
    core::ExperimentConfig cfg = bench::benchConfig(wl, seed);
    const auto r = bench::runPoint(cfg, load);
    if (r.observedRps <= 0.0)
        return 0.0;
    const double mean = 1e9 / r.observedRps;
    return r.sendVarNs2 / (mean * mean);
}

} // namespace

int
main()
{
    bench::printHeader("Ablation: contention stalls and the Fig. 3 knee");

    std::printf("%-34s %12s %12s %10s\n", "configuration", "CV2 @0.7",
                "CV2 @1.2", "knee(x)");
    struct Case
    {
        const char *label;
        bool stalls;
        double durMult;
    };
    for (const Case &c : {Case{"stalls off", false, 4.0},
                          Case{"stalls on, duration x2", true, 2.0},
                          Case{"stalls on, duration x4 (default)", true,
                               4.0},
                          Case{"stalls on, duration x8", true, 8.0}}) {
        auto wl = workload::workloadByName("silo");
        wl.contentionStalls = c.stalls;
        wl.stallDurationMultiple = c.durMult;
        const double pre = cv2At(wl, 0.7, 61);
        const double post = cv2At(wl, 1.2, 61);
        std::printf("%-34s %12.2f %12.2f %10.2f\n", c.label, pre, post,
                    pre > 0 ? post / pre : 0.0);
    }

    std::printf("\nExpected shape: knee ~1x with stalls off (superposed "
                "departures stay\nPoisson-like), growing with stall "
                "duration — the knob DESIGN.md §7 calls out.\n");
    return 0;
}
