/**
 * @file
 * Ablation — §V-C: io_uring blinds syscall-based observability.
 *
 * The same Data-Caching workload served two ways: through the classic
 * epoll/recv/send syscall loop, and through io_uring-style async I/O
 * (multishot receives completing into a userspace CQ, sends submitted
 * to the ring, io_uring_enter only on an empty CQ). The agent attaches
 * identically to both. With the ring, the send/recv families vanish and
 * Eq. 1 reads ~0 while the server actually serves tens of thousands of
 * requests per second — the paper's stated limitation, demonstrated.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace reqobs;
    bench::printHeader("Ablation: §V-C io_uring vs syscall-loop "
                       "observability (data-caching)");

    std::printf("%-24s %5s %12s %12s %14s %12s\n", "serving path", "load",
                "RPS_Real", "RPS_Obsv", "pollDur(us)", "syscalls");
    for (const char *name : {"data-caching", "data-caching-iouring"}) {
        for (double load : {0.3, 0.6, 0.9}) {
            core::ExperimentConfig cfg =
                bench::benchConfig(workload::workloadByName(name), 83);
            const auto r = bench::runPoint(cfg, load);
            std::printf("%-24s %5.2f %12.1f %12.1f %14.3f %12llu\n", name,
                        load, r.achievedRps, r.observedRps,
                        r.pollMeanDurNs / 1e3,
                        (unsigned long long)r.syscalls);
        }
    }
    std::printf("\nExpected shape (paper §V-C): \"in scenarios where "
                "advanced I/O frameworks like\nIO_uring are used ... our "
                "method may not yield useful insights as the receiving\n"
                "and sending of the request may not be observable by "
                "eBPF.\"\n");
    return 0;
}
