/**
 * @file
 * Ablation — Eq. 1 window length.
 *
 * The paper: "Our approach is particularly effective over extended
 * periods (at least 2048 syscalls) where request distribution
 * stabilizes. However, for very short observation windows, variations in
 * request distribution can pose challenges."
 *
 * We run data-caching at a fixed 60% load and compute RPS_obsv over
 * non-overlapping windows of increasing length, reporting the relative
 * error spread of the estimates per window size.
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hh"
#include "stats/welford.hh"

int
main()
{
    using namespace reqobs;
    bench::printHeader("Ablation: Eq. 1 estimate stability vs window size");

    core::ExperimentConfig cfg =
        bench::benchConfig(workload::workloadByName("data-caching"), 41);
    cfg.offeredRps = 0.6 * cfg.workload.saturationRps;
    cfg.requests = 60000;
    // Sample very often with a tiny floor; re-window offline below.
    cfg.agent.samplePeriod = sim::milliseconds(1);
    cfg.agent.minWindowSyscalls = 32;
    const auto r = core::runExperiment(cfg);

    std::printf("workload=data-caching, offered=%.0f rps, measured=%.1f "
                "rps, samples=%zu\n\n",
                cfg.offeredRps, r.achievedRps, r.samples.size());
    std::printf("%10s %10s %14s %14s\n", "window", "estimates",
                "mean RPS_obsv", "rel.std (%)");

    for (std::size_t window : {64, 256, 1024, 2048, 4096, 16384}) {
        // Coalesce the fine-grained samples into windows of ~`window`
        // send syscalls each.
        stats::Welford est;
        std::uint64_t acc_count = 0;
        double acc_time_ns = 0.0;
        for (const auto &s : r.samples) {
            acc_count += s.send.count;
            acc_time_ns +=
                s.send.meanNs * static_cast<double>(s.send.count);
            if (acc_count >= window) {
                est.add(1e9 * static_cast<double>(acc_count) /
                        acc_time_ns);
                acc_count = 0;
                acc_time_ns = 0.0;
            }
        }
        if (est.count() < 2) {
            std::printf("%10zu %10llu %14s %14s\n", window,
                        (unsigned long long)est.count(), "-", "-");
            continue;
        }
        std::printf("%10zu %10llu %14.1f %14.2f\n", window,
                    (unsigned long long)est.count(), est.mean(),
                    100.0 * est.stddev() / est.mean());
    }

    std::printf("\nExpected shape (paper): relative spread shrinks with "
                "window length and\nis small (stable) by ~2048 syscalls "
                "(Poisson: rel.std ~ 1/sqrt(n)).\n");
    return 0;
}
