/**
 * @file
 * Host-side performance report for the simulator itself (not the
 * simulated metrics): eBPF engine throughput (reference interpreter vs
 * translation cache), event-queue throughput, and wall time per figure
 * sweep, serial vs parallel. Prints a human-readable report and writes
 * the same numbers as JSON (--json <path>, default BENCH_perf.json) so
 * regressions are diffable across commits.
 *
 * All numbers here are wall-clock host measurements; the *simulated*
 * outputs are bit-identical regardless of engine or thread count
 * (asserted by tests/ebpf_diff_test.cc and the sweep tests), so this
 * binary only answers "how fast", never "what value".
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "sim/logging.hh"
#include "ebpf/probes.hh"
#include "ebpf/runtime.hh"
#include "kernel/kernel.hh"
#include "sim/simulation.hh"

namespace {

using namespace reqobs;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** One engine's throughput on the Listing-1 duration probe pair. */
struct EngineRun
{
    double seconds = 0.0;
    double eventsPerSec = 0.0;
    double insnsPerSec = 0.0;
};

EngineRun
runListingOneProbe(ebpf::ExecEngine engine, std::uint64_t pairs)
{
    sim::Simulation sim(1);
    kernel::Kernel kernel(sim);
    ebpf::RuntimeConfig rc;
    rc.engine = engine;
    ebpf::EbpfRuntime rt(kernel, rc);
    const auto maps = ebpf::probes::createDurationMaps(rt, "perf");
    auto v1 = rt.loadAndAttach(
        ebpf::probes::buildDurationEnter(rt, 1000, 232, maps),
        kernel::TracepointId::SysEnter);
    auto v2 = rt.loadAndAttach(
        ebpf::probes::buildDurationExit(rt, 1000, 232, maps),
        kernel::TracepointId::SysExit);
    if (!v1 || !v2)
        sim::fatal("bench_perf: Listing-1 probe failed to load");

    kernel::RawSyscallEvent en;
    en.point = kernel::TracepointId::SysEnter;
    en.syscall = 232;
    en.pidTgid = kernel::makePidTgid(1000, 1);
    kernel::RawSyscallEvent ex = en;
    ex.point = kernel::TracepointId::SysExit;

    std::uint64_t ts = 1;
    // Warm up branch predictors and the map before timing.
    for (std::uint64_t i = 0; i < pairs / 20 + 1; ++i) {
        en.timestamp = static_cast<sim::Tick>(ts += 1000);
        kernel.tracepoints().fire(en);
        ex.timestamp = static_cast<sim::Tick>(ts += 700);
        kernel.tracepoints().fire(ex);
    }
    const std::uint64_t insns0 = rt.insnsInterpreted();
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < pairs; ++i) {
        en.timestamp = static_cast<sim::Tick>(ts += 1000);
        kernel.tracepoints().fire(en);
        ex.timestamp = static_cast<sim::Tick>(ts += 700);
        kernel.tracepoints().fire(ex);
    }
    EngineRun r;
    r.seconds = secondsSince(start);
    r.eventsPerSec = static_cast<double>(2 * pairs) / r.seconds;
    r.insnsPerSec =
        static_cast<double>(rt.insnsInterpreted() - insns0) / r.seconds;
    return r;
}

/** Schedule-and-run throughput with @p outstanding events in flight. */
double
eventQueueThroughput(std::uint64_t total, std::uint64_t outstanding,
                     bool cancel_half)
{
    sim::Simulation sim(1);
    std::uint64_t fired = 0;
    const auto start = Clock::now();
    std::uint64_t scheduled = 0;
    while (scheduled < total) {
        std::vector<sim::EventId> ids;
        ids.reserve(outstanding);
        for (std::uint64_t i = 0; i < outstanding && scheduled < total;
             ++i, ++scheduled) {
            ids.push_back(sim.schedule(static_cast<sim::Tick>(i + 1),
                                       [&fired] { ++fired; }));
        }
        if (cancel_half) {
            for (std::size_t i = 0; i < ids.size(); i += 2)
                ids[i].cancel();
        }
        sim.runFor(static_cast<sim::Tick>(outstanding + 1));
    }
    return static_cast<double>(scheduled) / secondsSince(start);
}

/** The sweep workload behind each sweep-based figure bench. */
double
figureSweepSeconds(int fig, unsigned threads)
{
    const auto start = Clock::now();
    switch (fig) {
    case 2:
        for (const auto &wl : workload::paperWorkloads()) {
            core::ExperimentConfig base = bench::benchConfig(wl);
            core::runSweepParallel(base,
                                   {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8,
                                    0.9, 1.0},
                                   bench::benchScaling(), threads);
        }
        break;
    case 3:
        for (const auto &wl : workload::paperWorkloads()) {
            core::ExperimentConfig base = bench::benchConfig(wl);
            core::runSweepParallel(base, bench::kneeFractions(),
                                   bench::benchScaling(), threads);
        }
        break;
    case 4:
        for (const auto &wl : workload::paperWorkloads()) {
            core::ExperimentConfig base = bench::benchConfig(wl);
            core::runSweepParallel(base,
                                   {0.30, 0.50, 0.65, 0.80, 0.90, 0.95,
                                    1.00, 1.10, 1.20, 1.30},
                                   bench::benchScaling(), threads);
        }
        break;
    case 5: {
        const auto wl = workload::workloadByName("triton-grpc");
        net::NetemConfig lossy;
        lossy.lossProbability = 0.01;
        for (const auto &netem : {net::NetemConfig{}, lossy}) {
            core::ExperimentConfig base = bench::benchConfig(wl);
            base.netem = netem;
            core::runSweepParallel(base, {0.3, 0.5, 0.7, 0.9, 1.0},
                                   bench::benchScaling(), threads);
        }
        break;
    }
    default:
        sim::fatal("bench_perf: unknown figure %d", fig);
    }
    return secondsSince(start);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = "BENCH_perf.json";
    double min_speedup = 0.0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc)
            min_speedup = std::atof(argv[++i]);
    }

    // hardware_concurrency() may legitimately return 0 ("not
    // computable") and is 1 in single-core containers; either way the
    // sweeps below still run, they just can't demonstrate parallel
    // speedup. Record both the raw detection and what the harness will
    // actually use so the JSON is honest about the environment.
    const unsigned cores_detected = std::thread::hardware_concurrency();
    const unsigned cores = cores_detected == 0 ? 1 : cores_detected;
    const unsigned effective_jobs = core::effectiveParallelJobs(
        workload::paperWorkloads().size() * 10);
    bench::printHeader("Host-side performance (wall clock)");
    std::printf("host cores: %u (detected %u), parallel jobs: %u\n", cores,
                cores_detected, effective_jobs);

    // --- eBPF execution engines on the Listing-1 probe pair ---
    const std::uint64_t kPairs = 500000;
    const EngineRun ref =
        runListingOneProbe(ebpf::ExecEngine::Reference, kPairs);
    const EngineRun xlt =
        runListingOneProbe(ebpf::ExecEngine::Translated, kPairs);
    const EngineRun nat =
        runListingOneProbe(ebpf::ExecEngine::Native, kPairs);
    const double engine_speedup = xlt.eventsPerSec / ref.eventsPerSec;
    const double native_speedup = nat.eventsPerSec / ref.eventsPerSec;
    std::printf("\neBPF Listing-1 probe pair (%llu enter/exit pairs)\n",
                (unsigned long long)kPairs);
    std::printf("  %-22s %12s %14s\n", "engine", "events/s", "insns/s");
    std::printf("  %-22s %12.0f %14.0f\n", "reference interpreter",
                ref.eventsPerSec, ref.insnsPerSec);
    std::printf("  %-22s %12.0f %14.0f\n", "translation cache",
                xlt.eventsPerSec, xlt.insnsPerSec);
    std::printf("  %-22s %12.0f %14.0f\n", "native kernels",
                nat.eventsPerSec, nat.insnsPerSec);
    std::printf("  translated speedup: %.2fx, native speedup: %.2fx\n",
                engine_speedup, native_speedup);

    // --- event queue ---
    const std::uint64_t kEvents = 2000000;
    const double eq_run = eventQueueThroughput(kEvents, 1024, false);
    const double eq_cancel = eventQueueThroughput(kEvents, 1024, true);
    std::printf("\nevent queue (1024 outstanding)\n");
    std::printf("  schedule+run:        %12.0f events/s\n", eq_run);
    std::printf("  with half cancelled: %12.0f events/s\n", eq_cancel);

    // --- figure sweeps, serial vs parallel ---
    // fig1 reproduces a single traced request timeline, not a load
    // sweep, so it has no sweep to parallelize and is excluded here.
    std::printf("\nfigure sweeps, wall seconds (fig1 is not sweep-based)\n");
    std::printf("  %-6s %10s %10s %9s\n", "figure", "serial", "parallel",
                "speedup");
    double serial_s[6] = {0};
    double parallel_s[6] = {0};
    for (int fig : {2, 3, 4, 5}) {
        serial_s[fig] = figureSweepSeconds(fig, 1);
        parallel_s[fig] = figureSweepSeconds(fig, 0);
        std::printf("  fig%-3d %10.2f %10.2f %8.2fx\n", fig, serial_s[fig],
                    parallel_s[fig], serial_s[fig] / parallel_s[fig]);
    }

    std::FILE *f = std::fopen(json_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "bench_perf: cannot write %s\n",
                     json_path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"host_cores\": %u,\n", cores);
    std::fprintf(f, "  \"host_cores_detected\": %u,\n", cores_detected);
    std::fprintf(f, "  \"effective_jobs\": %u,\n", effective_jobs);
    std::fprintf(f, "  \"ebpf_listing1_probe\": {\n");
    std::fprintf(f, "    \"pairs\": %llu,\n", (unsigned long long)kPairs);
    std::fprintf(f,
                 "    \"reference\": {\"events_per_sec\": %.0f, "
                 "\"insns_per_sec\": %.0f},\n",
                 ref.eventsPerSec, ref.insnsPerSec);
    std::fprintf(f,
                 "    \"translated\": {\"events_per_sec\": %.0f, "
                 "\"insns_per_sec\": %.0f},\n",
                 xlt.eventsPerSec, xlt.insnsPerSec);
    std::fprintf(f,
                 "    \"native\": {\"events_per_sec\": %.0f, "
                 "\"insns_per_sec\": %.0f},\n",
                 nat.eventsPerSec, nat.insnsPerSec);
    std::fprintf(f, "    \"speedup\": %.3f,\n", engine_speedup);
    std::fprintf(f, "    \"native_speedup\": %.3f\n  },\n", native_speedup);
    std::fprintf(f, "  \"event_queue\": {\n");
    std::fprintf(f, "    \"schedule_run_per_sec\": %.0f,\n", eq_run);
    std::fprintf(f, "    \"half_cancelled_per_sec\": %.0f\n  },\n",
                 eq_cancel);
    std::fprintf(f, "  \"figure_sweeps_wall_seconds\": {\n");
    bool first = true;
    for (int fig : {2, 3, 4, 5}) {
        std::fprintf(f,
                     "%s    \"fig%d\": {\"serial\": %.3f, \"parallel\": "
                     "%.3f, \"speedup\": %.3f}",
                     first ? "" : ",\n", fig, serial_s[fig],
                     parallel_s[fig], serial_s[fig] / parallel_s[fig]);
        first = false;
    }
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());

    // Perf floor gate for CI: the native engine exists to beat the
    // reference interpreter by an order of magnitude on this exact
    // probe pair; a regression below the floor fails the run visibly.
    if (min_speedup > 0.0 && native_speedup < min_speedup) {
        std::fprintf(stderr,
                     "bench_perf: FAIL native speedup %.2fx below floor "
                     "%.2fx\n",
                     native_speedup, min_speedup);
        return 1;
    }
    return 0;
}
