/**
 * @file
 * §VI "Low overhead estimation" — probe overhead on tail latency.
 *
 * Every workload runs at two load levels with and without the full
 * observability agent attached (two delta probes + the duration probe
 * pair on both tracepoints). Probe execution costs simulated time on
 * the traced thread (dispatch cost + per-interpreted-instruction cost),
 * so any overhead shows up in client latency. The paper reports median
 * and upper-quartile overhead well below 1% (typically below 0.5%).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hh"

int
main()
{
    using namespace reqobs;
    bench::printHeader("§VI: eBPF probe overhead on tail latency");

    std::printf("%-14s %5s %12s %12s %9s %12s %12s\n", "workload", "load",
                "p99 off(ms)", "p99 on(ms)", "ovh(%)", "insns/call",
                "cost/req(us)");

    std::vector<double> overheads;
    for (const auto &wl : workload::paperWorkloads()) {
        for (double load : {0.5, 0.9}) {
            core::ExperimentConfig on = bench::benchConfig(wl, 23);
            core::ExperimentConfig off = on;
            off.attachAgent = false;
            const auto r_on = bench::runPoint(on, load);
            const auto r_off = bench::runPoint(off, load);
            const double ovh =
                100.0 *
                (static_cast<double>(r_on.p99Ns) -
                 static_cast<double>(r_off.p99Ns)) /
                static_cast<double>(r_off.p99Ns);
            overheads.push_back(std::abs(ovh));
            const double insns_per_event =
                r_on.probeEvents
                    ? static_cast<double>(r_on.probeInsns) /
                          static_cast<double>(r_on.probeEvents)
                    : 0.0;
            const double cost_per_req =
                r_on.completed ? static_cast<double>(r_on.probeCostNs) /
                                     static_cast<double>(r_on.completed) /
                                     1e3
                               : 0.0;
            std::printf("%-14s %5.2f %12.3f %12.3f %9.3f %12.1f %12.3f\n",
                        wl.name.c_str(), load, r_off.p99Ns / 1e6,
                        r_on.p99Ns / 1e6, ovh, insns_per_event,
                        cost_per_req);
        }
    }

    std::sort(overheads.begin(), overheads.end());
    const double median = overheads[overheads.size() / 2];
    const double q3 = overheads[overheads.size() * 3 / 4];
    std::printf("\n|overhead| median = %.3f%%, upper quartile = %.3f%%\n",
                median, q3);
    std::printf("Expected shape (paper): median and upper quartile "
                "significantly below 1%%.\n");
    std::printf("(ovh%% is measured through p99, which is chaotic: probe "
                "costs perturb event\ninterleaving; cost/req is the "
                "deterministic in-kernel time actually charged.)\n");
    return 0;
}
