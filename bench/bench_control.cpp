/**
 * @file
 * Closed-loop control from in-kernel metrics: does acting on the
 * paper's estimators (Eq. 1 rate, Eq. 2 send-variance knee, epoll
 * slack) hold per-tenant QoS where the same fleet run open-loop
 * violates it?
 *
 * Part 1 — diurnal + flash crowd on a heterogeneous fleet. Two tenants
 * (img-dnn + xapian) co-located on three machines, one of them half
 * speed. The img-dnn tenant follows a diurnal curve with a flash crowd
 * at the daily peak. Open loop, the slow machine saturates at the peak
 * and the flash crowd drowns the rest; closed loop, the controller
 * drains the slow machine off the balancers when its slack collapses
 * and sheds the flash crowd at the admission gate when the variance
 * knee fires.
 *
 * Part 2 — worker-pool scaling. A dispatcher/worker-pool tenant
 * (triton-http) on two machines takes a flash crowd beyond its
 * provisioned pool capacity. Open loop the pool drowns; closed loop the
 * controller unparks pre-provisioned workers when slack collapses.
 *
 * Both parts run the identical scenario twice — controller off, then
 * on — and the run fails (non-zero exit) if the closed loop violates
 * any tenant's QoS, the open loop violates none, or the controller
 * misbehaves (flapping migrations, tripped breaker, frozen ticks).
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/cluster.hh"

namespace {

using namespace reqobs;

bench::JsonRows g_json;
int g_failures = 0;

void
check(bool ok, const char *what)
{
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
    if (!ok)
        ++g_failures;
}

void
printTenantRows(const core::ClusterExperimentResult &res)
{
    for (const auto &t : res.tenants) {
        std::printf("%-12s %9.1f %9.1f %10.2f %6s %9llu %9llu\n",
                    t.name.c_str(), t.offeredRps, t.achievedRps,
                    static_cast<double>(t.p99Ns) / 1e6,
                    t.qosViolated ? "VIOL" : "held",
                    static_cast<unsigned long long>(t.shedded),
                    static_cast<unsigned long long>(t.shedDropped));
    }
}

void
printControllerRow(const core::ControllerStats &cs)
{
    std::printf("controller: ticks=%llu frozen=%llu migrations=%llu "
                "undrains=%llu scaleUp=%llu scaleDown=%llu "
                "shedEngage=%llu maxShed=%.2f breaker=%s\n",
                static_cast<unsigned long long>(cs.ticks),
                static_cast<unsigned long long>(cs.frozenTicks),
                static_cast<unsigned long long>(cs.migrations),
                static_cast<unsigned long long>(cs.undrains),
                static_cast<unsigned long long>(cs.scaleUps),
                static_cast<unsigned long long>(cs.scaleDowns),
                static_cast<unsigned long long>(cs.shedEngagements),
                cs.maxShed, cs.breakerOpen ? "OPEN" : "closed");
}

bool
anyViolated(const core::ClusterExperimentResult &res)
{
    for (const auto &t : res.tenants)
        if (t.qosViolated)
            return true;
    return false;
}

bool
allHeld(const core::ClusterExperimentResult &res)
{
    return !anyViolated(res);
}

void
jsonVerdict(const std::string &part,
            const core::ClusterExperimentResult &open,
            const core::ClusterExperimentResult &closed)
{
    // r2 column carries the verdict (1 = expected outcome), the health
    // column carries the closed loop's peak shed probability.
    const double verdict =
        (anyViolated(open) && allHeld(closed)) ? 1.0 : 0.0;
    g_json.add(part, "open-violates+closed-holds", verdict,
               closed.controller.maxShed);
}

/** Diurnal curve with a flash crowd at the daily peak. */
std::vector<core::LoadPhase>
diurnalFlashProfile(sim::Tick warmup)
{
    return {
        {warmup, 0.70},                       // night
        {warmup + sim::seconds(3), 1.00},     // day ramp
        {warmup + sim::seconds(6), 1.50},     // flash crowd
        {warmup + sim::milliseconds(8500), 0.70}, // recovery
    };
}

core::ClusterExperimentConfig
diurnalConfig(bool closed_loop)
{
    core::ClusterExperimentConfig cfg;
    cfg.machines = 3;
    cfg.machineSpeedFactors = {1.0, 1.0, 0.4};
    cfg.lbPolicy = net::LbPolicy::RoundRobin;
    cfg.warmup = sim::milliseconds(500);
    // One explicit fleet-wide p99 target (~14x the img-dnn mean demand)
    // instead of the per-workload defaults: the verdict should hinge on
    // the controller, not on where each derived threshold happens to sit.
    cfg.qosLatency = sim::milliseconds(110);
    cfg.seed = 11;
    cfg.agent.minWindowSyscalls = 64;
    cfg.agent.samplePeriod = sim::milliseconds(50);

    // Peak-normal rates sized against the heterogeneous capacity
    // (2.5 machine-equivalents): img-dnn at 40% of fleet saturation at
    // the daily peak, xapian a steady 20% background.
    const auto img = workload::workloadByName("img-dnn");
    const auto xap = workload::workloadByName("xapian");
    core::ClusterTenantSpec a;
    a.workload = img;
    a.offeredRps = 0.40 * img.saturationRps * 2.5;
    a.requests = 22000;
    a.loadProfile = diurnalFlashProfile(cfg.warmup);
    cfg.tenants.push_back(std::move(a));
    core::ClusterTenantSpec b;
    b.workload = xap;
    b.offeredRps = 0.20 * xap.saturationRps * 2.5;
    b.requests = 6000;
    cfg.tenants.push_back(std::move(b));

    cfg.controller.enabled = closed_loop;
    cfg.controller.tickPeriod = sim::milliseconds(100);
    cfg.controller.shedCooldown = sim::milliseconds(250);
    cfg.controller.shedStep = 0.15;
    cfg.controller.shedMax = 0.5;
    cfg.controller.migrationCooldown = sim::milliseconds(1000);
    // Neither tenant runs a dispatcher/worker pool, so pool scaling
    // would be pure no-op actuations; pin the band shut.
    cfg.controller.maxWorkers = cfg.controller.baseWorkers;
    return cfg;
}

void
partOneDiurnalFlash()
{
    bench::printHeader("Diurnal + flash crowd (img-dnn + xapian, 3 machines,"
                       " speeds 1.0/1.0/0.4)");
    std::printf("%-12s %9s %9s %10s %6s %9s %9s\n", "tenant", "offered",
                "achieved", "p99ms", "qos", "shedded", "dropped");
    bench::dashRule();

    const auto open = core::runClusterExperiment(diurnalConfig(false));
    std::printf("-- open loop --\n");
    printTenantRows(open);
    const auto closed = core::runClusterExperiment(diurnalConfig(true));
    std::printf("-- closed loop --\n");
    printTenantRows(closed);
    printControllerRow(closed.controller);

    check(anyViolated(open), "open loop violates at least one tenant's QoS");
    check(allHeld(closed), "closed loop holds every tenant's QoS");
    check(closed.controller.migrations >= 1,
          "slow machine drained at least once");
    check(closed.controller.migrations + closed.controller.undrains <= 4,
          "migrations bounded (no flapping)");
    check(!closed.controller.breakerOpen, "migration breaker never trips");
    check(closed.controller.maxShed <= 0.5 + 1e-9, "shed capped at shedMax");
    jsonVerdict("diurnal-flash", open, closed);

    std::printf("\nExpected shape: open loop, the half-speed machine takes "
                "a full third of the\narrivals and saturates at the daily "
                "peak, and the flash crowd drowns the\nrest; closed loop "
                "drains it off the balancers and sheds the crowd at the\n"
                "admission gate, trading a bounded reject fraction for an "
                "intact tail.\n");
}

core::ClusterExperimentConfig
scalingConfig(bool closed_loop)
{
    core::ClusterExperimentConfig cfg;
    cfg.machines = 2;
    cfg.lbPolicy = net::LbPolicy::LeastConnections;
    cfg.warmup = sim::milliseconds(500);
    cfg.seed = 13;
    // ~200ms inferences at tens of RPS: small windows, fast sampling.
    cfg.agent.minWindowSyscalls = 8;
    cfg.agent.samplePeriod = sim::milliseconds(100);

    const auto wl = workload::workloadByName("triton-http");
    core::ClusterTenantSpec t;
    t.workload = wl;
    // 70% of the 4-worker fleet capacity at base load...
    t.offeredRps = 0.70 * wl.saturationRps * 2.0;
    t.requests = 700;
    // ...and a flash crowd far beyond it (but within the 8-worker pool).
    t.loadProfile = {
        {cfg.warmup, 1.0},
        {cfg.warmup + sim::seconds(5), 2.1},
        {cfg.warmup + sim::seconds(11), 1.0},
    };
    cfg.tenants.push_back(std::move(t));

    cfg.controller.enabled = closed_loop;
    cfg.controller.tickPeriod = sim::milliseconds(100);
    cfg.controller.baseWorkers = wl.workers;
    cfg.controller.maxWorkers = 2 * wl.workers;
    cfg.controller.scaleStep = 2;
    cfg.controller.scaleCooldown = sim::milliseconds(500);
    // The dispatcher is never the bottleneck here, so its epoll slack
    // does not collapse to ~0 when the worker pool drowns — it halves
    // (arrival gaps shrink with the crowd). Put the scale band around
    // that: engage below 0.55, release above 0.80.
    cfg.controller.scaleUpSlackBelow = 0.55;
    cfg.controller.scaleDownSlackAbove = 0.80;
    // Two machines: the drain actuator can never fire (a drain would
    // leave one machine for the whole tenant), isolating pool scaling.
    return cfg;
}

void
partTwoWorkerScaling()
{
    bench::printHeader("Flash crowd vs worker-pool scaling (triton-http, "
                       "2 machines, pool 4 -> 8)");
    std::printf("%-12s %9s %9s %10s %6s %9s %9s\n", "tenant", "offered",
                "achieved", "p99ms", "qos", "shedded", "dropped");
    bench::dashRule();

    const auto open = core::runClusterExperiment(scalingConfig(false));
    std::printf("-- open loop --\n");
    printTenantRows(open);
    const auto closed = core::runClusterExperiment(scalingConfig(true));
    std::printf("-- closed loop --\n");
    printTenantRows(closed);
    printControllerRow(closed.controller);

    check(anyViolated(open), "open loop violates the tenant's QoS");
    check(allHeld(closed), "closed loop holds the tenant's QoS");
    check(closed.controller.scaleUps >= 1, "pool scaled up during the flash");
    check(closed.controller.migrations == 0,
          "no migrations on a two-machine fleet");
    check(!closed.controller.breakerOpen, "migration breaker never trips");
    jsonVerdict("worker-scaling", open, closed);

    std::printf("\nExpected shape: the flash crowd exceeds the 4-worker "
                "pools' capacity, so the\nopen loop's queues grow for the "
                "whole crowd; the controller unparks the\npre-provisioned "
                "workers within a few ticks of the slack collapse and the\n"
                "backlog never builds.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path = bench::jsonPathArg(argc, argv);
    partOneDiurnalFlash();
    partTwoWorkerScaling();
    if (!json_path.empty())
        g_json.write(json_path);
    if (g_failures > 0) {
        std::printf("\n%d check(s) FAILED\n", g_failures);
        return 1;
    }
    std::printf("\nall checks passed\n");
    return 0;
}
