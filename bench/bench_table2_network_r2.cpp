/**
 * @file
 * Table II — the effect of the network on approximated RPS.
 *
 * Repeats the Fig. 2 correlation under the paper's two netem
 * configurations ("0ms delay, 0% loss" vs "10ms delay, 1% loss") and
 * prints R² per workload per configuration. The observed-RPS metric must
 * be essentially unaffected by the impairment.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace reqobs;
    bench::printHeader("Table II: THE EFFECT OF THE NETWORK ON "
                       "APPROXIMATED RPS (R^2)");

    net::NetemConfig clean;
    net::NetemConfig impaired;
    impaired.delay = sim::milliseconds(10);
    impaired.lossProbability = 0.01;

    const std::vector<double> fractions = {0.2, 0.4, 0.6, 0.8, 0.9, 1.0};

    std::printf("%-14s | %-22s | %-22s\n", "workload", clean.describe().c_str(),
                impaired.describe().c_str());
    std::printf("%.70s\n",
                "-----------------------------------------------------------"
                "-----------");
    for (const auto &wl : workload::paperWorkloads()) {
        double r2[2] = {0.0, 0.0};
        int idx = 0;
        for (const auto *netem : {&clean, &impaired}) {
            const auto levels = bench::sweep(wl, fractions, *netem);
            r2[idx++] = bench::fitObsVsReal(levels).r2;
        }
        std::printf("%-14s | %22.4f | %22.4f\n", wl.name.c_str(), r2[0],
                    r2[1]);
    }

    std::printf("\nExpected shape (paper): both columns near 1 and nearly "
                "identical —\ndelay and loss wreck client latency but not "
                "the syscall-rate signal.\n");
    return 0;
}
