/**
 * @file
 * Shared helpers for the figure/table reproduction binaries: compact
 * sweep construction, per-level window-sample collection (the paper's
 * "ten estimations per actual RPS level"), and table printing.
 */

#ifndef REQOBS_BENCH_BENCH_UTIL_HH
#define REQOBS_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "stats/regression.hh"
#include "stats/summary.hh"

namespace reqobs::bench {

/** One load level's ground truth + the agent's windowed estimates. */
using LevelResult = core::SweepPoint;

/** Base config for one workload with bench-appropriate run lengths. */
inline core::ExperimentConfig
benchConfig(const workload::WorkloadConfig &wl, std::uint64_t seed = 7)
{
    core::ExperimentConfig cfg;
    cfg.workload = wl;
    cfg.seed = seed;
    // Windows of ~512+ sends per estimate; several estimates per level.
    cfg.agent.minWindowSyscalls = 512;
    return cfg;
}

/**
 * Bench profile of the shared sweep scaling: shorter windows than the
 * harness default (4x requests per RPS, 2.5k-25k), warmup and sampling
 * capped to fractions of the window, and one seed per level.
 */
inline core::SweepScaling
benchScaling()
{
    core::SweepScaling s;
    s.requestsPerRps = 4.0;
    s.minRequests = 2500;
    s.maxRequests = 25000;
    s.scaleWarmup = true;
    s.scaleSampling = true;
    s.perLevelSeedOffset = true;
    return s;
}

/** Run one load point with request count scaled to the rate. */
inline core::ExperimentResult
runPoint(const core::ExperimentConfig &cfg, double load_fraction)
{
    return core::runExperiment(
        core::sweepPointConfig(cfg, load_fraction, benchScaling()));
}

/** Sweep a workload over @p fractions (points run in parallel). */
inline std::vector<LevelResult>
sweep(const workload::WorkloadConfig &wl,
      const std::vector<double> &fractions,
      const net::NetemConfig &netem = {}, std::uint64_t seed = 7)
{
    core::ExperimentConfig base = benchConfig(wl, seed);
    base.netem = netem;
    return core::runSweepParallel(base, fractions, benchScaling());
}

/**
 * Fig. 2-style correlation: pair every windowed RPS_obsv estimate with
 * its level's measured RPS_real and fit RPS_real = a * RPS_obsv + b.
 * @param max_estimates_per_level mirrors the paper's "ten estimations
 *        plotted for each actual RPS level".
 */
inline stats::LinearFit
fitObsVsReal(const std::vector<LevelResult> &levels,
             std::size_t max_estimates_per_level = 10)
{
    stats::LinearRegression reg;
    for (const auto &lvl : levels) {
        std::size_t used = 0;
        for (const auto &s : lvl.result.samples) {
            if (used++ >= max_estimates_per_level)
                break;
            if (s.rpsObsv > 0.0)
                reg.add(s.rpsObsv, lvl.result.achievedRps);
        }
    }
    return reg.fit();
}

/**
 * Fraction of emitted samples flagged degraded by the agent's health
 * self-diagnostics, across all levels. Pairs every accuracy number with
 * a pipeline-health number: an R² is only trustworthy alongside the
 * fraction of its samples that came from a sick pipeline.
 */
inline double
degradedFraction(const std::vector<LevelResult> &levels)
{
    std::size_t total = 0, degraded = 0;
    for (const auto &lvl : levels) {
        for (const auto &s : lvl.result.samples) {
            ++total;
            if (s.health.degraded())
                ++degraded;
        }
    }
    return total > 0 ? static_cast<double>(degraded) /
                           static_cast<double>(total)
                     : 0.0;
}

/** First swept level whose run violated QoS (-1 if none). */
inline int
qosKneeIndex(const std::vector<LevelResult> &levels)
{
    for (std::size_t i = 0; i < levels.size(); ++i) {
        if (levels[i].result.qosViolated)
            return static_cast<int>(i);
    }
    return -1;
}

/** Default sweep fractions spanning the saturation knee. */
inline std::vector<double>
kneeFractions()
{
    return {0.50, 0.65, 0.80, 0.90, 0.95, 1.00, 1.10, 1.20, 1.30};
}

inline void
printHeader(const std::string &title)
{
    std::printf("\n=============================================="
                "==============================\n%s\n"
                "=============================================="
                "==============================\n",
                title.c_str());
}

} // namespace reqobs::bench

#endif // REQOBS_BENCH_BENCH_UTIL_HH
