/**
 * @file
 * Shared helpers for the figure/table reproduction binaries: compact
 * sweep construction, per-level window-sample collection (the paper's
 * "ten estimations per actual RPS level"), and table printing.
 */

#ifndef REQOBS_BENCH_BENCH_UTIL_HH
#define REQOBS_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "stats/regression.hh"
#include "stats/summary.hh"

namespace reqobs::bench {

/** One load level's ground truth + the agent's windowed estimates. */
using LevelResult = core::SweepPoint;

/** Base config for one workload with bench-appropriate run lengths. */
inline core::ExperimentConfig
benchConfig(const workload::WorkloadConfig &wl, std::uint64_t seed = 7)
{
    core::ExperimentConfig cfg;
    cfg.workload = wl;
    cfg.seed = seed;
    // Windows of ~512+ sends per estimate; several estimates per level.
    cfg.agent.minWindowSyscalls = 512;
    return cfg;
}

/**
 * Bench profile of the shared sweep scaling: shorter windows than the
 * harness default (4x requests per RPS, 2.5k-25k), warmup and sampling
 * capped to fractions of the window, and one seed per level.
 */
inline core::SweepScaling
benchScaling()
{
    core::SweepScaling s;
    s.requestsPerRps = 4.0;
    s.minRequests = 2500;
    s.maxRequests = 25000;
    s.scaleWarmup = true;
    s.scaleSampling = true;
    s.perLevelSeedOffset = true;
    return s;
}

/** Run one load point with request count scaled to the rate. */
inline core::ExperimentResult
runPoint(const core::ExperimentConfig &cfg, double load_fraction)
{
    return core::runExperiment(
        core::sweepPointConfig(cfg, load_fraction, benchScaling()));
}

/** Sweep a workload over @p fractions (points run in parallel). */
inline std::vector<LevelResult>
sweep(const workload::WorkloadConfig &wl,
      const std::vector<double> &fractions,
      const net::NetemConfig &netem = {}, std::uint64_t seed = 7)
{
    core::ExperimentConfig base = benchConfig(wl, seed);
    base.netem = netem;
    return core::runSweepParallel(base, fractions, benchScaling());
}

/**
 * Fig. 2-style correlation: pair every windowed RPS_obsv estimate with
 * its level's measured RPS_real and fit RPS_real = a * RPS_obsv + b.
 * @param max_estimates_per_level mirrors the paper's "ten estimations
 *        plotted for each actual RPS level".
 */
inline stats::LinearFit
fitObsVsReal(const std::vector<LevelResult> &levels,
             std::size_t max_estimates_per_level = 10)
{
    stats::LinearRegression reg;
    for (const auto &lvl : levels) {
        std::size_t used = 0;
        for (const auto &s : lvl.result.samples) {
            if (used++ >= max_estimates_per_level)
                break;
            if (s.rpsObsv > 0.0)
                reg.add(s.rpsObsv, lvl.result.achievedRps);
        }
    }
    return reg.fit();
}

/**
 * Fraction of emitted samples flagged degraded by the agent's health
 * self-diagnostics, across all levels. Pairs every accuracy number with
 * a pipeline-health number: an R² is only trustworthy alongside the
 * fraction of its samples that came from a sick pipeline.
 */
inline double
degradedFraction(const std::vector<LevelResult> &levels)
{
    std::size_t total = 0, degraded = 0;
    for (const auto &lvl : levels) {
        for (const auto &s : lvl.result.samples) {
            ++total;
            if (s.health.degraded())
                ++degraded;
        }
    }
    return total > 0 ? static_cast<double>(degraded) /
                           static_cast<double>(total)
                     : 0.0;
}

/** First swept level whose run violated QoS (-1 if none). */
inline int
qosKneeIndex(const std::vector<LevelResult> &levels)
{
    for (std::size_t i = 0; i < levels.size(); ++i) {
        if (levels[i].result.qosViolated)
            return static_cast<int>(i);
    }
    return -1;
}

/** Default sweep fractions spanning the saturation knee. */
inline std::vector<double>
kneeFractions()
{
    return {0.50, 0.65, 0.80, 0.90, 0.95, 1.00, 1.10, 1.20, 1.30};
}

inline void
printHeader(const std::string &title)
{
    std::printf("\n=============================================="
                "==============================\n%s\n"
                "=============================================="
                "==============================\n",
                title.c_str());
}

/** The 74-dash rule separating a table header from its rows. */
inline void
dashRule()
{
    std::printf("%.74s\n",
                "--------------------------------------------------------"
                "-------------------");
}

/** `--json <path>` argument, or empty ("--json" without a path is ignored,
 *  matching the benches' historical parsing). */
inline std::string
jsonPathArg(int argc, char **argv)
{
    std::string path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            path = argv[++i];
    }
    return path;
}

/**
 * The R²-matrix table shared by the matrix benches (fault classes ×
 * workloads, lifecycle classes × workloads, tenants × mixes): 14-char
 * row labels, 9-char cells. Stateless printf wrappers so the emitted
 * bytes are exactly the historical per-bench format strings.
 */
struct MatrixTable
{
    /** Header row (label + one column per class) and the dash rule. */
    static void header(const char *label,
                       const std::vector<std::string> &cols)
    {
        std::printf("%-14s", label);
        for (const std::string &c : cols)
            std::printf(" %9s", c.c_str());
        std::printf("\n");
        dashRule();
    }

    static void rowLabel(const std::string &label)
    {
        std::printf("%-14s", label.c_str());
    }

    /** One R² cell. */
    static void cell(double r2) { std::printf(" %9.4f", r2); }

    static void endRow() { std::printf("\n"); }

    /** Whole footer row of integer counts. */
    static void rowU64(const char *label,
                       const std::vector<std::uint64_t> &values)
    {
        std::printf("%-14s", label);
        for (std::uint64_t v : values)
            std::printf(" %9llu", static_cast<unsigned long long>(v));
        std::printf("\n");
    }

    /** Whole footer row of one-decimal values. */
    static void rowF1(const char *label, const std::vector<double> &values)
    {
        std::printf("%-14s", label);
        for (double v : values)
            std::printf(" %9.1f", v);
        std::printf("\n");
    }
};

/**
 * Accumulator for the benches' optional `--json <path>` emission. Two
 * row layouts share one writer: accuracy+health rows (part, label, r2,
 * degradedFraction) and lifecycle rows with the crash/downtime tail —
 * each row keeps whichever shape it was added with, so a bench mixing
 * neither sees its historical byte-exact output change.
 */
class JsonRows
{
  public:
    /** Accuracy + pipeline-health row. */
    void add(std::string part, std::string label, double r2,
             double degraded_fraction)
    {
        rows_.push_back({std::move(part), std::move(label), r2,
                         degraded_fraction, false, 0, 0.0});
    }

    /** Lifecycle row (adds crashes + downtime). */
    void addLifecycle(std::string part, std::string label, double r2,
                      double degraded_fraction, std::uint64_t crashes,
                      double downtime_ms)
    {
        rows_.push_back({std::move(part), std::move(label), r2,
                         degraded_fraction, true, crashes, downtime_ms});
    }

    std::size_t size() const { return rows_.size(); }

    /** Write `{"rows": [...]}` to @p path and log it. */
    void write(const std::string &path) const
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return;
        }
        std::fprintf(f, "{\n  \"rows\": [\n");
        for (std::size_t i = 0; i < rows_.size(); ++i) {
            const Row &r = rows_[i];
            const char *sep = i + 1 < rows_.size() ? "," : "";
            if (r.lifecycle) {
                std::fprintf(
                    f,
                    "    {\"part\": \"%s\", \"label\": \"%s\", "
                    "\"r2\": %.6f, "
                    "\"degradedFraction\": %.6f, \"crashes\": %llu, "
                    "\"downtimeMs\": %.3f}%s\n",
                    r.part.c_str(), r.label.c_str(), r.r2,
                    r.degradedFraction,
                    static_cast<unsigned long long>(r.crashes),
                    r.downtimeMs, sep);
            } else {
                std::fprintf(f,
                             "    {\"part\": \"%s\", \"label\": \"%s\", "
                             "\"r2\": %.6f, \"degradedFraction\": %.6f}%s\n",
                             r.part.c_str(), r.label.c_str(), r.r2,
                             r.degradedFraction, sep);
            }
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("\nwrote %s\n", path.c_str());
    }

  private:
    struct Row
    {
        std::string part;
        std::string label;
        double r2 = 0.0;
        double degradedFraction = 0.0;
        bool lifecycle = false;
        std::uint64_t crashes = 0;
        double downtimeMs = 0.0;
    };
    std::vector<Row> rows_;
};

} // namespace reqobs::bench

#endif // REQOBS_BENCH_BENCH_UTIL_HH
