/**
 * @file
 * Ablation — where per-request timeline reconstruction breaks (§III).
 *
 * The paper's first idea was reconstructing each request's recv->send
 * timeline; it works only when a single thread handles the whole
 * request. We quantify that: match rate of the naive per-thread pairing
 * for a single-threaded server vs the multi-threaded / dispatched /
 * two-stage models, at low and high load.
 */

#include <cstdio>

#include "bench_util.hh"
#include "client/load_generator.hh"
#include "core/trace.hh"
#include "workload/server_app.hh"

using namespace reqobs;

namespace {

struct Row
{
    std::string label;
    double matchRate;
    std::uint64_t nested;
    std::uint64_t unmatched;
    std::size_t requests;
};

Row
traceWorkload(const std::string &name, unsigned workers, double load)
{
    sim::Simulation sim(51);
    kernel::Kernel kernel(sim);
    auto wl = workload::workloadByName(name);
    wl.workers = workers;
    wl.saturationRps = 2000.0;
    wl.connections = 8;
    workload::ServerApp app(kernel, wl);

    client::ClientConfig cc;
    cc.offeredRps = load * wl.saturationRps;
    cc.maxRequests = 1500;
    cc.warmup = 0;
    client::LoadGenerator gen(sim, app, net::NetemConfig{},
                              net::TcpConfig{}, cc);

    core::TraceCollector collector(kernel, app.frontPid());
    app.start();
    collector.start();
    gen.start();
    sim.runFor(sim::seconds(1) +
               static_cast<sim::Tick>(1500.0 / cc.offeredRps * 1e9));
    collector.stop();

    const auto report = core::reconstructTimelines(collector.records(),
                                                   core::profileFor(wl));
    char label[96];
    std::snprintf(label, sizeof(label), "%s w=%u load=%.1f", name.c_str(),
                  workers, load);
    return Row{label, report.matchRate(), report.nestedRecvs,
               report.unmatchedSends, report.requests.size()};
}

} // namespace

int
main()
{
    bench::printHeader("Ablation: naive per-request reconstruction "
                       "across threading models");

    std::printf("%-32s %10s %8s %10s %10s\n", "configuration", "match%",
                "paired", "nested", "unmatched");
    for (const Row &row : {
             traceWorkload("data-caching", 1, 0.3),  // the easy case
             traceWorkload("data-caching", 1, 0.9),  // pipelining begins
             traceWorkload("data-caching", 8, 0.9),  // multi-threaded
             traceWorkload("triton-http", 4, 0.9),   // dispatched
             traceWorkload("web-search", 8, 0.9),    // two-stage + chunks
         }) {
        std::printf("%-32s %9.1f%% %8zu %10llu %10llu\n", row.label.c_str(),
                    100.0 * row.matchRate, row.requests,
                    (unsigned long long)row.nested,
                    (unsigned long long)row.unmatched);
    }

    std::printf("\nExpected shape (paper): near-perfect pairing for one "
                "thread at low load,\ndegrading with threads/dispatch — "
                "why the paper uses aggregate statistics.\n");
    return 0;
}
