/**
 * @file
 * Run-queue latency as the early-warning signal: the runqlat probe
 * pair (fourth metric family) against Eq. 2 send-variance on the
 * bench_colocation scenario, under the discrete-dispatch scheduler.
 *
 * Part 1 — detection lag. Two co-located tenants run in steady state;
 * a best-effort CPU antagonist switches on mid-run and drives the
 * machine into QoS violation. For each antagonist intensity across a
 * ramp, both metrics are watched on the same merged fleet series with
 * the same crossing rule (first window above 4x the pre-onset
 * baseline). Run-queue latency rises the moment tasks start queueing;
 * send variance only moves once completions are already bursty — so
 * runqlat must detect the violation with lower lag at every rung.
 *
 * Part 2 — root-cause disambiguation. Same tenants degraded two ways:
 * the CPU antagonist vs netem network impairment. Client p99 rises in
 * both runs; run-queue p99 rises ONLY under the antagonist (netem adds
 * its delay outside the machine, so the run queues never see it). A
 * flat runqlat under a degraded client tail localizes the bottleneck
 * off-box — the call Eq. 2 can only gesture at (its antagonist/netem
 * separation is a few x, runqlat's is three orders of magnitude).
 *
 * Exit is non-zero if any printed check fails (same contract as
 * bench_frontdoor / bench_control).
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/cluster.hh"

namespace {

using namespace reqobs;

bench::JsonRows g_json;
int g_failures = 0;

void
check(bool ok, const char *what)
{
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
    if (!ok)
        ++g_failures;
}

constexpr sim::Tick kOnset = sim::seconds(2);

/**
 * The bench_colocation two-tenant mix at a moderate steady load, on
 * the discrete scheduler with the runqlat family enabled.
 */
core::ClusterExperimentConfig
baseConfig()
{
    core::ClusterExperimentConfig cfg;
    for (const char *name : {"img-dnn", "xapian"}) {
        core::ClusterTenantSpec t;
        t.workload = workload::workloadByName(name);
        t.offeredRps = 0.4 * t.workload.saturationRps / 2.0;
        // ~5 s of steady arrivals: 2 s clean baseline, 3 s post-onset.
        t.requests = static_cast<std::uint64_t>(t.offeredRps * 5.0);
        cfg.tenants.push_back(std::move(t));
    }
    cfg.machines = 1;
    cfg.sched = kernel::SchedModel::Discrete;
    cfg.agent.minWindowSyscalls = 128;
    cfg.agent.runqlatHistogram = true;
    cfg.seed = 23;
    return cfg;
}

/**
 * First merged window at or after the onset where @p metric exceeds
 * 4x its pre-onset maximum (with @p floor guarding an all-zero
 * baseline). Returns the detection lag in ms, or -1 if never crossed.
 */
double
detectionLagMs(const std::vector<core::FleetSample> &series,
               double (*metric)(const core::FleetSample &), sim::Tick warmup,
               double floor)
{
    double baseline = floor;
    for (const auto &s : series)
        if (s.t >= warmup && s.t < kOnset)
            baseline = std::max(baseline, metric(s));
    const double threshold = 4.0 * baseline;
    for (const auto &s : series)
        if (s.t >= kOnset && metric(s) > threshold)
            return static_cast<double>(s.t - kOnset) / 1e6;
    return -1.0;
}

double
runqMetric(const core::FleetSample &s)
{
    return s.runqP99Ns;
}

double
varMetric(const core::FleetSample &s)
{
    return s.varianceNs2;
}

/** Worst (slowest) detection lag across the run's tenants. */
double
worstLagMs(const core::ClusterExperimentResult &res,
           double (*metric)(const core::FleetSample &), sim::Tick warmup,
           double floor, sim::Tick horizon_hint)
{
    double worst = 0.0;
    for (const auto &tr : res.tenants) {
        double lag = detectionLagMs(tr.fleetSeries, metric, warmup, floor);
        if (lag < 0.0) // never detected: charge the remaining horizon
            lag = static_cast<double>(horizon_hint - kOnset) / 1e6;
        worst = std::max(worst, lag);
    }
    return worst;
}

void
partOneDetectionLag()
{
    bench::printHeader("Detection lag: runqlat p99 vs Eq. 2 send variance "
                       "(antagonist onset at t=2s)");

    const std::vector<unsigned> ramp = {24, 48, 96};
    std::vector<core::ClusterExperimentConfig> configs;
    for (unsigned threads : ramp) {
        core::ClusterExperimentConfig cfg = baseConfig();
        cfg.antagonist = true;
        cfg.antagonistConfig.threads = threads;
        cfg.antagonistConfig.startAt = kOnset;
        configs.push_back(std::move(cfg));
    }
    const auto results = core::runClusterExperimentsParallel(configs);

    std::printf("%-12s %14s %14s %10s\n", "antagonist", "runqlat_ms",
                "variance_ms", "winner");
    bench::dashRule();

    double sum_runq = 0.0, sum_var = 0.0;
    bool runq_never_slower = true;
    for (std::size_t i = 0; i < ramp.size(); ++i) {
        // Post-onset tail is ~3 s; cap undetected lags there.
        const sim::Tick horizon = kOnset + sim::seconds(3);
        const double lag_runq =
            worstLagMs(results[i], runqMetric, configs[i].warmup,
                       2048.0, horizon);
        const double lag_var =
            worstLagMs(results[i], varMetric, configs[i].warmup,
                       1.0, horizon);
        sum_runq += lag_runq;
        sum_var += lag_var;
        if (lag_runq > lag_var)
            runq_never_slower = false;
        const std::string label =
            std::to_string(ramp[i]) + "-thread";
        std::printf("%-12s %14.1f %14.1f %10s\n", label.c_str(), lag_runq,
                    lag_var,
                    lag_runq < lag_var
                        ? "runqlat"
                        : (lag_runq == lag_var ? "tie" : "variance"));
        g_json.add("detection", label, lag_runq, lag_var);
    }

    check(runq_never_slower,
          "runqlat detection lag <= Eq. 2 lag at every antagonist rung");
    check(sum_runq < sum_var,
          "runqlat detects strictly earlier than Eq. 2 on aggregate");

    std::printf("\nExpected shape: run-queue latency crosses its baseline "
                "within one or two\nsample windows of the antagonist "
                "waking (tasks queue immediately); the\nsend-variance "
                "crossing trails it because completions must first slow "
                "enough\nto make the send stream visibly bursty "
                "(Fig. 3's mechanism).\n");
}

void
partTwoDisambiguation()
{
    bench::printHeader("Root cause: CPU saturation vs network degradation "
                       "(same client symptom)");

    core::ClusterExperimentConfig antag = baseConfig();
    antag.antagonist = true;
    antag.antagonistConfig.threads = 64;

    core::ClusterExperimentConfig netem = baseConfig();
    netem.netem.delay = sim::milliseconds(5);
    netem.netem.jitter = sim::milliseconds(2);
    netem.netem.lossProbability = 0.0;

    core::ClusterExperimentConfig clean = baseConfig();

    const auto results = core::runClusterExperimentsParallel(
        {antag, netem, clean});
    const auto &ra = results[0];
    const auto &rn = results[1];
    const auto &rc = results[2];

    std::printf("%-12s %14s %14s %14s\n", "run", "client_p99_ms",
                "runq_p99_us", "variance_ns2");
    bench::dashRule();
    auto row = [](const char *label,
                  const core::ClusterExperimentResult &res) {
        std::uint64_t p99 = 0;
        double runq = 0.0, var = 0.0;
        for (const auto &tr : res.tenants) {
            p99 = std::max(p99, tr.p99Ns);
            runq = std::max(runq, tr.runqP99Ns);
            for (const auto &s : tr.fleetSeries)
                var = std::max(var, s.varianceNs2);
        }
        std::printf("%-12s %14.2f %14.2f %14.3g\n", label,
                    static_cast<double>(p99) / 1e6, runq / 1e3, var);
        return std::make_pair(runq, p99);
    };
    const auto [runq_a, p99_a] = row("antagonist", ra);
    const auto [runq_n, p99_n] = row("netem", rn);
    const auto [runq_c, p99_c] = row("clean", rc);

    // Both degradations hurt the client...
    check(p99_a > p99_c, "antagonist inflates client p99 over clean");
    check(p99_n > p99_c, "netem inflates client p99 over clean");
    // ...but only CPU contention moves the run queues.
    check(runq_a > 5.0 * std::max(runq_n, 1.0),
          "runq p99 rises >5x under the antagonist vs netem");
    check(runq_n <= 2.0 * std::max(runq_c, 1.0),
          "runq p99 stays flat under netem (within 2x of clean)");

    g_json.add("disambiguation", "antagonist", runq_a,
               static_cast<double>(p99_a));
    g_json.add("disambiguation", "netem", runq_n,
               static_cast<double>(p99_n));
    g_json.add("disambiguation", "clean", runq_c,
               static_cast<double>(p99_c));

    std::printf("\nExpected shape: the client tail degrades in both "
                "impaired runs, but run-queue\np99 separates them — "
                "elevated only when the CPU is the bottleneck. Network\n"
                "impairment adds delay outside the machine, so the run "
                "queues stay as short\nas the clean run's.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path = bench::jsonPathArg(argc, argv);
    partOneDetectionLag();
    partTwoDisambiguation();
    if (!json_path.empty())
        g_json.write(json_path);
    if (g_failures > 0) {
        std::printf("\n%d check(s) FAILED\n", g_failures);
        return 1;
    }
    std::printf("\nall checks passed\n");
    return 0;
}
