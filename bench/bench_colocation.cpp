/**
 * @file
 * Co-location: per-tenant Eq. 1 accuracy when 2-4 paper workloads share
 * one machine and ONE attached probe set. The multi-tenant agent's
 * bytecode resolves the tenant in-kernel (tgid-match prologue, per-slot
 * stats maps), so each tenant's RPS_obsv comes from counters that never
 * saw another tenant's syscalls.
 *
 * Part 1 repeats the Fig. 2 correlation per tenant for each mix, with a
 * best-effort CPU antagonist as the last column — its bursts are pure
 * compute (invisible to the probes) and its own syscalls carry a foreign
 * tgid, so it may shift the achieved rates but must not leak into any
 * tenant's counters.
 *
 * Part 2 cross-checks the in-kernel attribution itself: the send-family
 * events the verified bytecode credited to each tenant slot against the
 * kernel's own per-tgid dispatch counts.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/cluster.hh"

namespace {

using namespace reqobs;

bench::JsonRows g_json;

struct Mix
{
    std::string label;
    std::vector<std::string> tenants;
    bool antagonist = false;
};

std::vector<Mix>
mixes()
{
    return {
        {"2t", {"img-dnn", "xapian"}, false},
        {"3t", {"img-dnn", "xapian", "silo"}, false},
        {"4t", {"img-dnn", "xapian", "silo", "specjbb"}, false},
        {"2t+antag", {"img-dnn", "xapian"}, true},
    };
}

std::vector<double>
fractions()
{
    return {0.4, 0.6, 0.8, 1.0};
}

/** Cluster config for one mix at one machine-load fraction. */
core::ClusterExperimentConfig
mixConfig(const Mix &mix, double frac)
{
    core::ClusterExperimentConfig cfg;
    const double n = static_cast<double>(mix.tenants.size());
    for (const auto &name : mix.tenants) {
        core::ClusterTenantSpec t;
        t.workload = workload::workloadByName(name);
        // An equal share of each tenant's own saturation rate puts the
        // machine as a whole near frac of capacity.
        t.offeredRps = frac * t.workload.saturationRps / n;
        t.requests = static_cast<std::uint64_t>(
            std::clamp(t.offeredRps * 4.0, 1500.0, 12000.0));
        cfg.tenants.push_back(std::move(t));
    }
    cfg.machines = 1;
    cfg.antagonist = mix.antagonist;
    // Enough burn threads to oversubscribe the GPS cores — an antagonist
    // that fits in the machine's idle capacity never perturbs anything.
    cfg.antagonistConfig.threads = 48;
    // Shorter windows than the single-tenant benches: each tenant only
    // sees its share of the machine's syscall stream.
    cfg.agent.minWindowSyscalls = 256;
    cfg.seed = 7 + static_cast<std::uint64_t>(frac * 1000.0);
    return cfg;
}

/**
 * Fig. 2-style fit for one tenant across the mix's load levels: pair up
 * to ten merged fleet windows per level with that level's achieved rate.
 */
double
tenantR2(const std::vector<core::ClusterExperimentResult> &levels,
         std::size_t tenant)
{
    stats::LinearRegression reg;
    for (const auto &res : levels) {
        const auto &tr = res.tenants[tenant];
        std::size_t used = 0;
        for (const auto &s : tr.fleetSeries) {
            if (used >= 10)
                break;
            if (s.rpsObsv > 0.0 &&
                s.contributors == tr.machines.size()) {
                reg.add(s.rpsObsv, tr.achievedRps);
                ++used;
            }
        }
    }
    return reg.fit().r2;
}

void
partOneMatrix()
{
    bench::printHeader("Co-location: per-tenant Eq. 1 R^2, one probe set "
                       "per machine");
    const auto all = mixes();
    const auto fracs = fractions();

    // Sweep every mix up front (levels run in parallel).
    std::vector<std::vector<core::ClusterExperimentResult>> results;
    for (const auto &mix : all) {
        std::vector<core::ClusterExperimentConfig> configs;
        for (double frac : fracs)
            configs.push_back(mixConfig(mix, frac));
        results.push_back(core::runClusterExperimentsParallel(configs));
    }

    std::vector<std::string> cols;
    for (const auto &mix : all)
        cols.push_back(mix.label);
    bench::MatrixTable::header("tenant", cols);

    // Row per tenant appearing in any mix, in first-appearance order.
    std::vector<std::string> tenants;
    for (const auto &mix : all)
        for (const auto &name : mix.tenants)
            if (std::find(tenants.begin(), tenants.end(), name) ==
                tenants.end())
                tenants.push_back(name);

    for (const auto &name : tenants) {
        bench::MatrixTable::rowLabel(name);
        for (std::size_t m = 0; m < all.size(); ++m) {
            const auto &mix = all[m];
            const auto it =
                std::find(mix.tenants.begin(), mix.tenants.end(), name);
            if (it == mix.tenants.end()) {
                std::printf(" %9s", "-");
                continue;
            }
            const auto t = static_cast<std::size_t>(
                it - mix.tenants.begin());
            const double r2 = tenantR2(results[m], t);
            bench::MatrixTable::cell(r2);
            g_json.add("colocation", mix.label + "/" + name, r2, 0.0);
        }
        bench::MatrixTable::endRow();
    }

    // Fleet-level achieved/offered at the saturation level shows how
    // much the co-location (and the antagonist) actually contended.
    std::vector<double> ach_pct;
    for (const auto &res : results) {
        const auto &top = res.back();
        ach_pct.push_back(top.fleetOfferedRps > 0.0
                              ? 100.0 * top.fleetAchievedRps /
                                    top.fleetOfferedRps
                              : 0.0);
    }
    bench::MatrixTable::rowF1("ach%@1.0", ach_pct);

    std::printf("\nExpected shape: every tenant holds R^2 near its "
                "single-tenant Fig. 2 value in\nevery mix; the antagonist "
                "column moves the achieved rates (shared CPU), not\nthe "
                "fit, because its syscalls carry a foreign tgid and its "
                "bursts make no\nsyscalls at all.\n");
}

void
partTwoAttribution()
{
    bench::printHeader("In-kernel attribution cross-check (4 tenants, "
                       "0.8 load)");
    const auto res = core::runClusterExperiment(mixConfig(mixes()[2], 0.8));

    std::printf("%-14s %10s %10s %10s %10s %8s\n", "tenant", "probe_send",
                "kern_sys", "rps_obsv", "rps_real", "samples");
    bench::dashRule();
    for (const auto &tr : res.tenants) {
        const auto &m = tr.machines[0];
        std::printf("%-14s %10llu %10llu %10.1f %10.1f %8llu\n",
                    tr.name.c_str(),
                    static_cast<unsigned long long>(m.probeSendSyscalls),
                    static_cast<unsigned long long>(m.kernelSyscalls),
                    m.observedRps, m.achievedRps,
                    static_cast<unsigned long long>(m.samples));
    }

    std::printf("\nExpected shape: each tenant's probe-attributed send "
                "count is a stable\nfraction of its own kernel per-tgid "
                "dispatch count (sends are one syscall\nfamily of "
                "several), and rps_obsv tracks rps_real per tenant even "
                "though all\nfour share one attached program.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path = bench::jsonPathArg(argc, argv);
    partOneMatrix();
    partTwoAttribution();
    if (!json_path.empty())
        g_json.write(json_path);
    return 0;
}
