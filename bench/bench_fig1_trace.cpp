/**
 * @file
 * Fig. 1 — the syscall stream of a request-response application.
 *
 * Builds a small single-threaded server with explicit lifecycle phases:
 * setup (socket/bind/listen/accept/epoll_ctl), request processing
 * (epoll_wait/recvfrom/sendto cycles) and shutdown (close/exit), traces
 * it with the ring-buffer stream probes (Fig. 1b), prints the per-phase
 * syscall mix, then extracts the request-oriented subset and
 * reconstructs the per-request timeline (Fig. 1c).
 */

#include <cstdio>
#include <map>

#include "bench_util.hh"
#include "core/trace.hh"
#include "kernel/kernel.hh"
#include "kernel/notifier.hh"

using namespace reqobs;
using kernel::Fd;
using kernel::Kernel;
using kernel::Message;
using kernel::Syscall;
using kernel::Task;
using kernel::Tid;

int
main()
{
    bench::printHeader("Fig. 1: syscall stream of a request-response "
                       "application");

    sim::Simulation sim(31);
    Kernel kernel(sim);
    const kernel::Pid pid = kernel.createProcess("fig1-server");

    core::TraceCollector collector(kernel, pid);
    collector.start();

    constexpr int kClients = 4;
    constexpr int kRequestsPerClient = 8;

    // The server: one thread, full lifecycle.
    kernel.spawnThread(pid, [](Kernel &k, Tid tid) -> Task {
        // --- setup phase ---
        const Fd listen_fd = k.listen(tid); // socket+bind+listen
        const Fd epfd = k.epollCreate(tid);
        std::vector<Fd> conns;
        while (conns.size() < kClients) {
            const Fd fd = co_await k.accept(tid, listen_fd);
            if (fd < 0) {
                co_await k.sleepFor(tid, sim::microseconds(50));
                continue;
            }
            k.epollCtlAdd(tid, epfd, fd);
            conns.push_back(fd);
        }
        // --- request-processing phase ---
        int served = 0;
        while (served < kClients * kRequestsPerClient) {
            auto ready = co_await k.epollWait(tid, epfd, 8, -1);
            for (const auto &r : ready) {
                auto rx = co_await k.recv(tid, r.fd, Syscall::Recvfrom);
                if (!rx.ok)
                    continue;
                co_await k.compute(tid, sim::microseconds(150));
                Message resp = rx.msg;
                resp.isResponse = true;
                co_await k.send(tid, r.fd, std::move(resp),
                                Syscall::Sendto);
                ++served;
            }
        }
        // --- shutdown phase ---
        co_await k.sleepFor(tid, sim::microseconds(10));
    });

    // Clients: enqueue connections, then stream requests.
    std::vector<std::shared_ptr<kernel::Socket>> socks;
    for (int c = 0; c < kClients; ++c) {
        auto sock = std::make_shared<kernel::Socket>(c + 1);
        socks.push_back(sock);
        sim.schedule(sim::microseconds(10 * (c + 1)), [&kernel, pid, sock] {
            kernel.enqueueIncomingConnection(pid, 3 /* first fd */, sock);
        });
    }
    std::uint64_t rid = 1;
    for (int i = 0; i < kRequestsPerClient; ++i) {
        for (int c = 0; c < kClients; ++c) {
            auto *sk = socks[c].get();
            Message m;
            m.requestId = rid++;
            sim.schedule(sim::milliseconds(1) +
                             sim::microseconds(400) * (i * kClients + c),
                         [&sim, sk, m] { sk->deliver(m, sim.now()); });
        }
    }

    sim.runFor(sim::milliseconds(60));
    collector.stop();

    const auto &records = collector.records();
    std::printf("(a) application: 1 thread, %d connections, %d requests\n",
                kClients, kClients * kRequestsPerClient);

    // (b) the raw stream: syscall mix per phase.
    std::map<std::string, int> setup_mix, run_mix;
    const std::uint64_t phase_split =
        static_cast<std::uint64_t>(sim::milliseconds(1));
    for (const auto &r : records) {
        if (r.point != 1)
            continue;
        auto &mix = r.ts < phase_split ? setup_mix : run_mix;
        ++mix[kernel::syscallName(static_cast<std::int64_t>(r.id))];
    }
    std::printf("\n(b) traced syscall mix (sys_exit events)\n");
    std::printf("    setup phase:   ");
    for (const auto &[name, n] : setup_mix)
        std::printf("%s x%d  ", name.c_str(), n);
    std::printf("\n    request phase: ");
    for (const auto &[name, n] : run_mix)
        std::printf("%s x%d  ", name.c_str(), n);
    std::printf("\n\n    first records of the stream:\n%s",
                collector.format(14).c_str());

    // (c) extracted request-oriented subset -> reconstruction.
    const auto report =
        core::reconstructTimelines(records, core::genericProfile());
    std::printf("\n(c) per-request reconstruction (single thread)\n");
    std::printf("    requests reconstructed : %zu\n",
                report.requests.size());
    std::printf("    match rate             : %.1f%%\n",
                100.0 * report.matchRate());
    std::printf("    mean service time      : %.1f us (true compute: "
                "150 us + syscall costs)\n",
                report.meanServiceNs() / 1e3);
    std::printf("    ring-buffer drops      : %llu\n",
                (unsigned long long)collector.drops());
    return 0;
}
