file(REMOVE_RECURSE
  "CMakeFiles/reqobs_sim.dir/distributions.cc.o"
  "CMakeFiles/reqobs_sim.dir/distributions.cc.o.d"
  "CMakeFiles/reqobs_sim.dir/event_queue.cc.o"
  "CMakeFiles/reqobs_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/reqobs_sim.dir/logging.cc.o"
  "CMakeFiles/reqobs_sim.dir/logging.cc.o.d"
  "CMakeFiles/reqobs_sim.dir/rng.cc.o"
  "CMakeFiles/reqobs_sim.dir/rng.cc.o.d"
  "CMakeFiles/reqobs_sim.dir/simulation.cc.o"
  "CMakeFiles/reqobs_sim.dir/simulation.cc.o.d"
  "CMakeFiles/reqobs_sim.dir/time.cc.o"
  "CMakeFiles/reqobs_sim.dir/time.cc.o.d"
  "libreqobs_sim.a"
  "libreqobs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reqobs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
