# Empty dependencies file for reqobs_sim.
# This may be replaced when dependencies are built.
