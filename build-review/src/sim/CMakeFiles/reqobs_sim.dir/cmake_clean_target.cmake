file(REMOVE_RECURSE
  "libreqobs_sim.a"
)
