file(REMOVE_RECURSE
  "libreqobs_client.a"
)
