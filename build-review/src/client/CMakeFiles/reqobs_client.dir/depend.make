# Empty dependencies file for reqobs_client.
# This may be replaced when dependencies are built.
