file(REMOVE_RECURSE
  "CMakeFiles/reqobs_client.dir/fleet_generator.cc.o"
  "CMakeFiles/reqobs_client.dir/fleet_generator.cc.o.d"
  "CMakeFiles/reqobs_client.dir/load_generator.cc.o"
  "CMakeFiles/reqobs_client.dir/load_generator.cc.o.d"
  "CMakeFiles/reqobs_client.dir/storm_generator.cc.o"
  "CMakeFiles/reqobs_client.dir/storm_generator.cc.o.d"
  "libreqobs_client.a"
  "libreqobs_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reqobs_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
