file(REMOVE_RECURSE
  "CMakeFiles/reqobs_stats.dir/histogram.cc.o"
  "CMakeFiles/reqobs_stats.dir/histogram.cc.o.d"
  "CMakeFiles/reqobs_stats.dir/regression.cc.o"
  "CMakeFiles/reqobs_stats.dir/regression.cc.o.d"
  "CMakeFiles/reqobs_stats.dir/summary.cc.o"
  "CMakeFiles/reqobs_stats.dir/summary.cc.o.d"
  "CMakeFiles/reqobs_stats.dir/welford.cc.o"
  "CMakeFiles/reqobs_stats.dir/welford.cc.o.d"
  "CMakeFiles/reqobs_stats.dir/windowed.cc.o"
  "CMakeFiles/reqobs_stats.dir/windowed.cc.o.d"
  "libreqobs_stats.a"
  "libreqobs_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reqobs_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
