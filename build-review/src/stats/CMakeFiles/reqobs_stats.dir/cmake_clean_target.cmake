file(REMOVE_RECURSE
  "libreqobs_stats.a"
)
