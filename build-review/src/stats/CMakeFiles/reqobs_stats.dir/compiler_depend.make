# Empty compiler generated dependencies file for reqobs_stats.
# This may be replaced when dependencies are built.
