# Empty dependencies file for reqobs_core.
# This may be replaced when dependencies are built.
