file(REMOVE_RECURSE
  "CMakeFiles/reqobs_core.dir/agent.cc.o"
  "CMakeFiles/reqobs_core.dir/agent.cc.o.d"
  "CMakeFiles/reqobs_core.dir/cluster.cc.o"
  "CMakeFiles/reqobs_core.dir/cluster.cc.o.d"
  "CMakeFiles/reqobs_core.dir/controller.cc.o"
  "CMakeFiles/reqobs_core.dir/controller.cc.o.d"
  "CMakeFiles/reqobs_core.dir/estimators.cc.o"
  "CMakeFiles/reqobs_core.dir/estimators.cc.o.d"
  "CMakeFiles/reqobs_core.dir/experiment.cc.o"
  "CMakeFiles/reqobs_core.dir/experiment.cc.o.d"
  "CMakeFiles/reqobs_core.dir/fleet.cc.o"
  "CMakeFiles/reqobs_core.dir/fleet.cc.o.d"
  "CMakeFiles/reqobs_core.dir/parallel.cc.o"
  "CMakeFiles/reqobs_core.dir/parallel.cc.o.d"
  "CMakeFiles/reqobs_core.dir/profile.cc.o"
  "CMakeFiles/reqobs_core.dir/profile.cc.o.d"
  "CMakeFiles/reqobs_core.dir/supervisor.cc.o"
  "CMakeFiles/reqobs_core.dir/supervisor.cc.o.d"
  "CMakeFiles/reqobs_core.dir/tenant_metrics.cc.o"
  "CMakeFiles/reqobs_core.dir/tenant_metrics.cc.o.d"
  "CMakeFiles/reqobs_core.dir/trace.cc.o"
  "CMakeFiles/reqobs_core.dir/trace.cc.o.d"
  "libreqobs_core.a"
  "libreqobs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reqobs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
