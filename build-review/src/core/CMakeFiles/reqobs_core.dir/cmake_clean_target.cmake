file(REMOVE_RECURSE
  "libreqobs_core.a"
)
