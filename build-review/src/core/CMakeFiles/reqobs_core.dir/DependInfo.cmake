
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/agent.cc" "src/core/CMakeFiles/reqobs_core.dir/agent.cc.o" "gcc" "src/core/CMakeFiles/reqobs_core.dir/agent.cc.o.d"
  "/root/repo/src/core/cluster.cc" "src/core/CMakeFiles/reqobs_core.dir/cluster.cc.o" "gcc" "src/core/CMakeFiles/reqobs_core.dir/cluster.cc.o.d"
  "/root/repo/src/core/controller.cc" "src/core/CMakeFiles/reqobs_core.dir/controller.cc.o" "gcc" "src/core/CMakeFiles/reqobs_core.dir/controller.cc.o.d"
  "/root/repo/src/core/estimators.cc" "src/core/CMakeFiles/reqobs_core.dir/estimators.cc.o" "gcc" "src/core/CMakeFiles/reqobs_core.dir/estimators.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/reqobs_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/reqobs_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/fleet.cc" "src/core/CMakeFiles/reqobs_core.dir/fleet.cc.o" "gcc" "src/core/CMakeFiles/reqobs_core.dir/fleet.cc.o.d"
  "/root/repo/src/core/parallel.cc" "src/core/CMakeFiles/reqobs_core.dir/parallel.cc.o" "gcc" "src/core/CMakeFiles/reqobs_core.dir/parallel.cc.o.d"
  "/root/repo/src/core/profile.cc" "src/core/CMakeFiles/reqobs_core.dir/profile.cc.o" "gcc" "src/core/CMakeFiles/reqobs_core.dir/profile.cc.o.d"
  "/root/repo/src/core/supervisor.cc" "src/core/CMakeFiles/reqobs_core.dir/supervisor.cc.o" "gcc" "src/core/CMakeFiles/reqobs_core.dir/supervisor.cc.o.d"
  "/root/repo/src/core/tenant_metrics.cc" "src/core/CMakeFiles/reqobs_core.dir/tenant_metrics.cc.o" "gcc" "src/core/CMakeFiles/reqobs_core.dir/tenant_metrics.cc.o.d"
  "/root/repo/src/core/trace.cc" "src/core/CMakeFiles/reqobs_core.dir/trace.cc.o" "gcc" "src/core/CMakeFiles/reqobs_core.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/sim/CMakeFiles/reqobs_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/reqobs_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/fault/CMakeFiles/reqobs_fault.dir/DependInfo.cmake"
  "/root/repo/build-review/src/kernel/CMakeFiles/reqobs_kernel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/reqobs_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ebpf/CMakeFiles/reqobs_ebpf.dir/DependInfo.cmake"
  "/root/repo/build-review/src/workload/CMakeFiles/reqobs_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/client/CMakeFiles/reqobs_client.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
