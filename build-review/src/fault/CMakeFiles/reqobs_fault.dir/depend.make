# Empty dependencies file for reqobs_fault.
# This may be replaced when dependencies are built.
