file(REMOVE_RECURSE
  "CMakeFiles/reqobs_fault.dir/fault.cc.o"
  "CMakeFiles/reqobs_fault.dir/fault.cc.o.d"
  "libreqobs_fault.a"
  "libreqobs_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reqobs_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
