file(REMOVE_RECURSE
  "libreqobs_fault.a"
)
