file(REMOVE_RECURSE
  "CMakeFiles/reqobs_workload.dir/config.cc.o"
  "CMakeFiles/reqobs_workload.dir/config.cc.o.d"
  "CMakeFiles/reqobs_workload.dir/machine.cc.o"
  "CMakeFiles/reqobs_workload.dir/machine.cc.o.d"
  "CMakeFiles/reqobs_workload.dir/server_app.cc.o"
  "CMakeFiles/reqobs_workload.dir/server_app.cc.o.d"
  "libreqobs_workload.a"
  "libreqobs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reqobs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
