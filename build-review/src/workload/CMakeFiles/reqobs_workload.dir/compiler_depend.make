# Empty compiler generated dependencies file for reqobs_workload.
# This may be replaced when dependencies are built.
