file(REMOVE_RECURSE
  "libreqobs_workload.a"
)
