# Empty dependencies file for reqobs_kernel.
# This may be replaced when dependencies are built.
