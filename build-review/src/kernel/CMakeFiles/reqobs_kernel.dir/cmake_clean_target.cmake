file(REMOVE_RECURSE
  "libreqobs_kernel.a"
)
