file(REMOVE_RECURSE
  "CMakeFiles/reqobs_kernel.dir/cpu.cc.o"
  "CMakeFiles/reqobs_kernel.dir/cpu.cc.o.d"
  "CMakeFiles/reqobs_kernel.dir/epoll.cc.o"
  "CMakeFiles/reqobs_kernel.dir/epoll.cc.o.d"
  "CMakeFiles/reqobs_kernel.dir/io_uring.cc.o"
  "CMakeFiles/reqobs_kernel.dir/io_uring.cc.o.d"
  "CMakeFiles/reqobs_kernel.dir/kernel.cc.o"
  "CMakeFiles/reqobs_kernel.dir/kernel.cc.o.d"
  "CMakeFiles/reqobs_kernel.dir/notifier.cc.o"
  "CMakeFiles/reqobs_kernel.dir/notifier.cc.o.d"
  "CMakeFiles/reqobs_kernel.dir/socket.cc.o"
  "CMakeFiles/reqobs_kernel.dir/socket.cc.o.d"
  "CMakeFiles/reqobs_kernel.dir/syscalls.cc.o"
  "CMakeFiles/reqobs_kernel.dir/syscalls.cc.o.d"
  "CMakeFiles/reqobs_kernel.dir/system_spec.cc.o"
  "CMakeFiles/reqobs_kernel.dir/system_spec.cc.o.d"
  "CMakeFiles/reqobs_kernel.dir/tracepoint.cc.o"
  "CMakeFiles/reqobs_kernel.dir/tracepoint.cc.o.d"
  "libreqobs_kernel.a"
  "libreqobs_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reqobs_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
