
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/cpu.cc" "src/kernel/CMakeFiles/reqobs_kernel.dir/cpu.cc.o" "gcc" "src/kernel/CMakeFiles/reqobs_kernel.dir/cpu.cc.o.d"
  "/root/repo/src/kernel/epoll.cc" "src/kernel/CMakeFiles/reqobs_kernel.dir/epoll.cc.o" "gcc" "src/kernel/CMakeFiles/reqobs_kernel.dir/epoll.cc.o.d"
  "/root/repo/src/kernel/io_uring.cc" "src/kernel/CMakeFiles/reqobs_kernel.dir/io_uring.cc.o" "gcc" "src/kernel/CMakeFiles/reqobs_kernel.dir/io_uring.cc.o.d"
  "/root/repo/src/kernel/kernel.cc" "src/kernel/CMakeFiles/reqobs_kernel.dir/kernel.cc.o" "gcc" "src/kernel/CMakeFiles/reqobs_kernel.dir/kernel.cc.o.d"
  "/root/repo/src/kernel/notifier.cc" "src/kernel/CMakeFiles/reqobs_kernel.dir/notifier.cc.o" "gcc" "src/kernel/CMakeFiles/reqobs_kernel.dir/notifier.cc.o.d"
  "/root/repo/src/kernel/socket.cc" "src/kernel/CMakeFiles/reqobs_kernel.dir/socket.cc.o" "gcc" "src/kernel/CMakeFiles/reqobs_kernel.dir/socket.cc.o.d"
  "/root/repo/src/kernel/syscalls.cc" "src/kernel/CMakeFiles/reqobs_kernel.dir/syscalls.cc.o" "gcc" "src/kernel/CMakeFiles/reqobs_kernel.dir/syscalls.cc.o.d"
  "/root/repo/src/kernel/system_spec.cc" "src/kernel/CMakeFiles/reqobs_kernel.dir/system_spec.cc.o" "gcc" "src/kernel/CMakeFiles/reqobs_kernel.dir/system_spec.cc.o.d"
  "/root/repo/src/kernel/tracepoint.cc" "src/kernel/CMakeFiles/reqobs_kernel.dir/tracepoint.cc.o" "gcc" "src/kernel/CMakeFiles/reqobs_kernel.dir/tracepoint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/sim/CMakeFiles/reqobs_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/reqobs_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/fault/CMakeFiles/reqobs_fault.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
