
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ebpf/assembler.cc" "src/ebpf/CMakeFiles/reqobs_ebpf.dir/assembler.cc.o" "gcc" "src/ebpf/CMakeFiles/reqobs_ebpf.dir/assembler.cc.o.d"
  "/root/repo/src/ebpf/dsl.cc" "src/ebpf/CMakeFiles/reqobs_ebpf.dir/dsl.cc.o" "gcc" "src/ebpf/CMakeFiles/reqobs_ebpf.dir/dsl.cc.o.d"
  "/root/repo/src/ebpf/helpers.cc" "src/ebpf/CMakeFiles/reqobs_ebpf.dir/helpers.cc.o" "gcc" "src/ebpf/CMakeFiles/reqobs_ebpf.dir/helpers.cc.o.d"
  "/root/repo/src/ebpf/insn.cc" "src/ebpf/CMakeFiles/reqobs_ebpf.dir/insn.cc.o" "gcc" "src/ebpf/CMakeFiles/reqobs_ebpf.dir/insn.cc.o.d"
  "/root/repo/src/ebpf/maps.cc" "src/ebpf/CMakeFiles/reqobs_ebpf.dir/maps.cc.o" "gcc" "src/ebpf/CMakeFiles/reqobs_ebpf.dir/maps.cc.o.d"
  "/root/repo/src/ebpf/native.cc" "src/ebpf/CMakeFiles/reqobs_ebpf.dir/native.cc.o" "gcc" "src/ebpf/CMakeFiles/reqobs_ebpf.dir/native.cc.o.d"
  "/root/repo/src/ebpf/probes.cc" "src/ebpf/CMakeFiles/reqobs_ebpf.dir/probes.cc.o" "gcc" "src/ebpf/CMakeFiles/reqobs_ebpf.dir/probes.cc.o.d"
  "/root/repo/src/ebpf/runtime.cc" "src/ebpf/CMakeFiles/reqobs_ebpf.dir/runtime.cc.o" "gcc" "src/ebpf/CMakeFiles/reqobs_ebpf.dir/runtime.cc.o.d"
  "/root/repo/src/ebpf/translate.cc" "src/ebpf/CMakeFiles/reqobs_ebpf.dir/translate.cc.o" "gcc" "src/ebpf/CMakeFiles/reqobs_ebpf.dir/translate.cc.o.d"
  "/root/repo/src/ebpf/verifier.cc" "src/ebpf/CMakeFiles/reqobs_ebpf.dir/verifier.cc.o" "gcc" "src/ebpf/CMakeFiles/reqobs_ebpf.dir/verifier.cc.o.d"
  "/root/repo/src/ebpf/vm.cc" "src/ebpf/CMakeFiles/reqobs_ebpf.dir/vm.cc.o" "gcc" "src/ebpf/CMakeFiles/reqobs_ebpf.dir/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/sim/CMakeFiles/reqobs_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/kernel/CMakeFiles/reqobs_kernel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/fault/CMakeFiles/reqobs_fault.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/reqobs_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
