file(REMOVE_RECURSE
  "CMakeFiles/reqobs_ebpf.dir/assembler.cc.o"
  "CMakeFiles/reqobs_ebpf.dir/assembler.cc.o.d"
  "CMakeFiles/reqobs_ebpf.dir/dsl.cc.o"
  "CMakeFiles/reqobs_ebpf.dir/dsl.cc.o.d"
  "CMakeFiles/reqobs_ebpf.dir/helpers.cc.o"
  "CMakeFiles/reqobs_ebpf.dir/helpers.cc.o.d"
  "CMakeFiles/reqobs_ebpf.dir/insn.cc.o"
  "CMakeFiles/reqobs_ebpf.dir/insn.cc.o.d"
  "CMakeFiles/reqobs_ebpf.dir/maps.cc.o"
  "CMakeFiles/reqobs_ebpf.dir/maps.cc.o.d"
  "CMakeFiles/reqobs_ebpf.dir/native.cc.o"
  "CMakeFiles/reqobs_ebpf.dir/native.cc.o.d"
  "CMakeFiles/reqobs_ebpf.dir/probes.cc.o"
  "CMakeFiles/reqobs_ebpf.dir/probes.cc.o.d"
  "CMakeFiles/reqobs_ebpf.dir/runtime.cc.o"
  "CMakeFiles/reqobs_ebpf.dir/runtime.cc.o.d"
  "CMakeFiles/reqobs_ebpf.dir/translate.cc.o"
  "CMakeFiles/reqobs_ebpf.dir/translate.cc.o.d"
  "CMakeFiles/reqobs_ebpf.dir/verifier.cc.o"
  "CMakeFiles/reqobs_ebpf.dir/verifier.cc.o.d"
  "CMakeFiles/reqobs_ebpf.dir/vm.cc.o"
  "CMakeFiles/reqobs_ebpf.dir/vm.cc.o.d"
  "libreqobs_ebpf.a"
  "libreqobs_ebpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reqobs_ebpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
