# Empty compiler generated dependencies file for reqobs_ebpf.
# This may be replaced when dependencies are built.
