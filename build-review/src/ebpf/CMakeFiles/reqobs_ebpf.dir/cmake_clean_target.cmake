file(REMOVE_RECURSE
  "libreqobs_ebpf.a"
)
