
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/frontdoor.cc" "src/net/CMakeFiles/reqobs_net.dir/frontdoor.cc.o" "gcc" "src/net/CMakeFiles/reqobs_net.dir/frontdoor.cc.o.d"
  "/root/repo/src/net/link.cc" "src/net/CMakeFiles/reqobs_net.dir/link.cc.o" "gcc" "src/net/CMakeFiles/reqobs_net.dir/link.cc.o.d"
  "/root/repo/src/net/load_balancer.cc" "src/net/CMakeFiles/reqobs_net.dir/load_balancer.cc.o" "gcc" "src/net/CMakeFiles/reqobs_net.dir/load_balancer.cc.o.d"
  "/root/repo/src/net/netem.cc" "src/net/CMakeFiles/reqobs_net.dir/netem.cc.o" "gcc" "src/net/CMakeFiles/reqobs_net.dir/netem.cc.o.d"
  "/root/repo/src/net/tcp.cc" "src/net/CMakeFiles/reqobs_net.dir/tcp.cc.o" "gcc" "src/net/CMakeFiles/reqobs_net.dir/tcp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/sim/CMakeFiles/reqobs_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/kernel/CMakeFiles/reqobs_kernel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/fault/CMakeFiles/reqobs_fault.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/reqobs_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
