file(REMOVE_RECURSE
  "libreqobs_net.a"
)
