# Empty compiler generated dependencies file for reqobs_net.
# This may be replaced when dependencies are built.
