file(REMOVE_RECURSE
  "CMakeFiles/reqobs_net.dir/frontdoor.cc.o"
  "CMakeFiles/reqobs_net.dir/frontdoor.cc.o.d"
  "CMakeFiles/reqobs_net.dir/link.cc.o"
  "CMakeFiles/reqobs_net.dir/link.cc.o.d"
  "CMakeFiles/reqobs_net.dir/load_balancer.cc.o"
  "CMakeFiles/reqobs_net.dir/load_balancer.cc.o.d"
  "CMakeFiles/reqobs_net.dir/netem.cc.o"
  "CMakeFiles/reqobs_net.dir/netem.cc.o.d"
  "CMakeFiles/reqobs_net.dir/tcp.cc.o"
  "CMakeFiles/reqobs_net.dir/tcp.cc.o.d"
  "libreqobs_net.a"
  "libreqobs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reqobs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
