# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/test_sim[1]_include.cmake")
include("/root/repo/build-review/tests/test_stats[1]_include.cmake")
include("/root/repo/build-review/tests/test_kernel[1]_include.cmake")
include("/root/repo/build-review/tests/test_cpu[1]_include.cmake")
include("/root/repo/build-review/tests/test_net[1]_include.cmake")
include("/root/repo/build-review/tests/test_ebpf_vm[1]_include.cmake")
include("/root/repo/build-review/tests/test_ebpf_verifier[1]_include.cmake")
include("/root/repo/build-review/tests/test_ebpf_maps[1]_include.cmake")
include("/root/repo/build-review/tests/test_ebpf_probes[1]_include.cmake")
include("/root/repo/build-review/tests/test_workload[1]_include.cmake")
include("/root/repo/build-review/tests/test_client[1]_include.cmake")
include("/root/repo/build-review/tests/test_core[1]_include.cmake")
include("/root/repo/build-review/tests/test_integration[1]_include.cmake")
include("/root/repo/build-review/tests/test_ebpf_fuzz[1]_include.cmake")
include("/root/repo/build-review/tests/test_io_uring[1]_include.cmake")
include("/root/repo/build-review/tests/test_properties[1]_include.cmake")
include("/root/repo/build-review/tests/test_ebpf_dsl[1]_include.cmake")
include("/root/repo/build-review/tests/test_experiment[1]_include.cmake")
include("/root/repo/build-review/tests/test_ebpf_diff[1]_include.cmake")
include("/root/repo/build-review/tests/test_scale[1]_include.cmake")
include("/root/repo/build-review/tests/test_fault[1]_include.cmake")
include("/root/repo/build-review/tests/test_supervisor[1]_include.cmake")
include("/root/repo/build-review/tests/test_cluster[1]_include.cmake")
include("/root/repo/build-review/tests/test_frontdoor[1]_include.cmake")
include("/root/repo/build-review/tests/test_controller[1]_include.cmake")
