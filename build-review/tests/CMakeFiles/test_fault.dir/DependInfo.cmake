
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fault_test.cc" "tests/CMakeFiles/test_fault.dir/fault_test.cc.o" "gcc" "tests/CMakeFiles/test_fault.dir/fault_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/reqobs_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ebpf/CMakeFiles/reqobs_ebpf.dir/DependInfo.cmake"
  "/root/repo/build-review/src/client/CMakeFiles/reqobs_client.dir/DependInfo.cmake"
  "/root/repo/build-review/src/workload/CMakeFiles/reqobs_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/reqobs_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/kernel/CMakeFiles/reqobs_kernel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/reqobs_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/fault/CMakeFiles/reqobs_fault.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/reqobs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
