# Empty compiler generated dependencies file for test_ebpf_maps.
# This may be replaced when dependencies are built.
