file(REMOVE_RECURSE
  "CMakeFiles/test_ebpf_maps.dir/ebpf_maps_test.cc.o"
  "CMakeFiles/test_ebpf_maps.dir/ebpf_maps_test.cc.o.d"
  "test_ebpf_maps"
  "test_ebpf_maps.pdb"
  "test_ebpf_maps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ebpf_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
