# Empty compiler generated dependencies file for test_ebpf_dsl.
# This may be replaced when dependencies are built.
