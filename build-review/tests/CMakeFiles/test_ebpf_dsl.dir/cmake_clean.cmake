file(REMOVE_RECURSE
  "CMakeFiles/test_ebpf_dsl.dir/ebpf_dsl_test.cc.o"
  "CMakeFiles/test_ebpf_dsl.dir/ebpf_dsl_test.cc.o.d"
  "test_ebpf_dsl"
  "test_ebpf_dsl.pdb"
  "test_ebpf_dsl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ebpf_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
