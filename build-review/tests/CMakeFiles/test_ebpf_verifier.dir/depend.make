# Empty dependencies file for test_ebpf_verifier.
# This may be replaced when dependencies are built.
