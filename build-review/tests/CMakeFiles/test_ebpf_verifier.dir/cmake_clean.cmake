file(REMOVE_RECURSE
  "CMakeFiles/test_ebpf_verifier.dir/ebpf_verifier_test.cc.o"
  "CMakeFiles/test_ebpf_verifier.dir/ebpf_verifier_test.cc.o.d"
  "test_ebpf_verifier"
  "test_ebpf_verifier.pdb"
  "test_ebpf_verifier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ebpf_verifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
