file(REMOVE_RECURSE
  "CMakeFiles/test_client.dir/client_test.cc.o"
  "CMakeFiles/test_client.dir/client_test.cc.o.d"
  "test_client"
  "test_client.pdb"
  "test_client[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
