# Empty compiler generated dependencies file for test_ebpf_probes.
# This may be replaced when dependencies are built.
