file(REMOVE_RECURSE
  "CMakeFiles/test_ebpf_probes.dir/ebpf_probes_test.cc.o"
  "CMakeFiles/test_ebpf_probes.dir/ebpf_probes_test.cc.o.d"
  "test_ebpf_probes"
  "test_ebpf_probes.pdb"
  "test_ebpf_probes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ebpf_probes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
