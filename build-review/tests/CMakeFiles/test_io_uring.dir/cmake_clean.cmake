file(REMOVE_RECURSE
  "CMakeFiles/test_io_uring.dir/io_uring_test.cc.o"
  "CMakeFiles/test_io_uring.dir/io_uring_test.cc.o.d"
  "test_io_uring"
  "test_io_uring.pdb"
  "test_io_uring[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_uring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
