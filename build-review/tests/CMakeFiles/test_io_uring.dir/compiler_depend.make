# Empty compiler generated dependencies file for test_io_uring.
# This may be replaced when dependencies are built.
