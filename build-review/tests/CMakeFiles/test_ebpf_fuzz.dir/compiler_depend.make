# Empty compiler generated dependencies file for test_ebpf_fuzz.
# This may be replaced when dependencies are built.
