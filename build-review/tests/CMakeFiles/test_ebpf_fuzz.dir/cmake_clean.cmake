file(REMOVE_RECURSE
  "CMakeFiles/test_ebpf_fuzz.dir/ebpf_fuzz_test.cc.o"
  "CMakeFiles/test_ebpf_fuzz.dir/ebpf_fuzz_test.cc.o.d"
  "test_ebpf_fuzz"
  "test_ebpf_fuzz.pdb"
  "test_ebpf_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ebpf_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
