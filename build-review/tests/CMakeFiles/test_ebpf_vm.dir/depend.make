# Empty dependencies file for test_ebpf_vm.
# This may be replaced when dependencies are built.
