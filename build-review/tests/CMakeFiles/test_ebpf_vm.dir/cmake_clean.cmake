file(REMOVE_RECURSE
  "CMakeFiles/test_ebpf_vm.dir/ebpf_vm_test.cc.o"
  "CMakeFiles/test_ebpf_vm.dir/ebpf_vm_test.cc.o.d"
  "test_ebpf_vm"
  "test_ebpf_vm.pdb"
  "test_ebpf_vm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ebpf_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
