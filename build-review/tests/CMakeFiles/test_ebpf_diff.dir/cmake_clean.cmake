file(REMOVE_RECURSE
  "CMakeFiles/test_ebpf_diff.dir/ebpf_diff_test.cc.o"
  "CMakeFiles/test_ebpf_diff.dir/ebpf_diff_test.cc.o.d"
  "test_ebpf_diff"
  "test_ebpf_diff.pdb"
  "test_ebpf_diff[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ebpf_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
