# Empty dependencies file for test_ebpf_diff.
# This may be replaced when dependencies are built.
