file(REMOVE_RECURSE
  "CMakeFiles/test_frontdoor.dir/frontdoor_test.cc.o"
  "CMakeFiles/test_frontdoor.dir/frontdoor_test.cc.o.d"
  "test_frontdoor"
  "test_frontdoor.pdb"
  "test_frontdoor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frontdoor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
