# Empty compiler generated dependencies file for test_frontdoor.
# This may be replaced when dependencies are built.
