# Empty dependencies file for saturation_monitor.
# This may be replaced when dependencies are built.
