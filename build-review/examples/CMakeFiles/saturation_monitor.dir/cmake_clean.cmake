file(REMOVE_RECURSE
  "CMakeFiles/saturation_monitor.dir/saturation_monitor.cpp.o"
  "CMakeFiles/saturation_monitor.dir/saturation_monitor.cpp.o.d"
  "saturation_monitor"
  "saturation_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saturation_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
