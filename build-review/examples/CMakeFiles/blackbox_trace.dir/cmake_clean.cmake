file(REMOVE_RECURSE
  "CMakeFiles/blackbox_trace.dir/blackbox_trace.cpp.o"
  "CMakeFiles/blackbox_trace.dir/blackbox_trace.cpp.o.d"
  "blackbox_trace"
  "blackbox_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blackbox_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
