# Empty compiler generated dependencies file for blackbox_trace.
# This may be replaced when dependencies are built.
