# Empty dependencies file for tracelet.
# This may be replaced when dependencies are built.
