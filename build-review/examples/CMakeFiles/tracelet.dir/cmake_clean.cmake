file(REMOVE_RECURSE
  "CMakeFiles/tracelet.dir/tracelet.cpp.o"
  "CMakeFiles/tracelet.dir/tracelet.cpp.o.d"
  "tracelet"
  "tracelet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracelet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
