# Empty compiler generated dependencies file for power_governor.
# This may be replaced when dependencies are built.
