file(REMOVE_RECURSE
  "CMakeFiles/power_governor.dir/power_governor.cpp.o"
  "CMakeFiles/power_governor.dir/power_governor.cpp.o.d"
  "power_governor"
  "power_governor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_governor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
