file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_rps_correlation.dir/bench/bench_fig2_rps_correlation.cpp.o"
  "CMakeFiles/bench_fig2_rps_correlation.dir/bench/bench_fig2_rps_correlation.cpp.o.d"
  "bench/bench_fig2_rps_correlation"
  "bench/bench_fig2_rps_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_rps_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
