# Empty compiler generated dependencies file for bench_fig2_rps_correlation.
# This may be replaced when dependencies are built.
