file(REMOVE_RECURSE
  "CMakeFiles/bench_frontdoor.dir/bench/bench_frontdoor.cpp.o"
  "CMakeFiles/bench_frontdoor.dir/bench/bench_frontdoor.cpp.o.d"
  "bench/bench_frontdoor"
  "bench/bench_frontdoor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_frontdoor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
