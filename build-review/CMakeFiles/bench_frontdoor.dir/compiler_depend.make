# Empty compiler generated dependencies file for bench_frontdoor.
# This may be replaced when dependencies are built.
