# Empty dependencies file for bench_ablation_iouring.
# This may be replaced when dependencies are built.
