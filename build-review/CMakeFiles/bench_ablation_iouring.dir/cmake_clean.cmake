file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_iouring.dir/bench/bench_ablation_iouring.cpp.o"
  "CMakeFiles/bench_ablation_iouring.dir/bench/bench_ablation_iouring.cpp.o.d"
  "bench/bench_ablation_iouring"
  "bench/bench_ablation_iouring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_iouring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
