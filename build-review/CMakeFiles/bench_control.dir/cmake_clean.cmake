file(REMOVE_RECURSE
  "CMakeFiles/bench_control.dir/bench/bench_control.cpp.o"
  "CMakeFiles/bench_control.dir/bench/bench_control.cpp.o.d"
  "bench/bench_control"
  "bench/bench_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
