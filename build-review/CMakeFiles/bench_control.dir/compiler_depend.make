# Empty compiler generated dependencies file for bench_control.
# This may be replaced when dependencies are built.
