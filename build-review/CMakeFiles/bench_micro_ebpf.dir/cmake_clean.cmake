file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_ebpf.dir/bench/bench_micro_ebpf.cpp.o"
  "CMakeFiles/bench_micro_ebpf.dir/bench/bench_micro_ebpf.cpp.o.d"
  "bench/bench_micro_ebpf"
  "bench/bench_micro_ebpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_ebpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
