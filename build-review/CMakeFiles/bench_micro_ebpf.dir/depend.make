# Empty dependencies file for bench_micro_ebpf.
# This may be replaced when dependencies are built.
