file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_epoll_duration.dir/bench/bench_fig4_epoll_duration.cpp.o"
  "CMakeFiles/bench_fig4_epoll_duration.dir/bench/bench_fig4_epoll_duration.cpp.o.d"
  "bench/bench_fig4_epoll_duration"
  "bench/bench_fig4_epoll_duration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_epoll_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
