# Empty compiler generated dependencies file for bench_fig4_epoll_duration.
# This may be replaced when dependencies are built.
