file(REMOVE_RECURSE
  "CMakeFiles/bench_overhead.dir/bench/bench_overhead.cpp.o"
  "CMakeFiles/bench_overhead.dir/bench/bench_overhead.cpp.o.d"
  "bench/bench_overhead"
  "bench/bench_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
