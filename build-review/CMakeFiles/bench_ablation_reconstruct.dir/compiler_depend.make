# Empty compiler generated dependencies file for bench_ablation_reconstruct.
# This may be replaced when dependencies are built.
