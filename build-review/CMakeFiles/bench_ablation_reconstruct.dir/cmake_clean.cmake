file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_reconstruct.dir/bench/bench_ablation_reconstruct.cpp.o"
  "CMakeFiles/bench_ablation_reconstruct.dir/bench/bench_ablation_reconstruct.cpp.o.d"
  "bench/bench_ablation_reconstruct"
  "bench/bench_ablation_reconstruct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reconstruct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
