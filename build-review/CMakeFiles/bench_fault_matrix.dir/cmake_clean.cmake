file(REMOVE_RECURSE
  "CMakeFiles/bench_fault_matrix.dir/bench/bench_fault_matrix.cpp.o"
  "CMakeFiles/bench_fault_matrix.dir/bench/bench_fault_matrix.cpp.o.d"
  "bench/bench_fault_matrix"
  "bench/bench_fault_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fault_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
