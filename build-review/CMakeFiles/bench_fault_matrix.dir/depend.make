# Empty dependencies file for bench_fault_matrix.
# This may be replaced when dependencies are built.
