# Empty dependencies file for bench_fig1_trace.
# This may be replaced when dependencies are built.
