file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_trace.dir/bench/bench_fig1_trace.cpp.o"
  "CMakeFiles/bench_fig1_trace.dir/bench/bench_fig1_trace.cpp.o.d"
  "bench/bench_fig1_trace"
  "bench/bench_fig1_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
