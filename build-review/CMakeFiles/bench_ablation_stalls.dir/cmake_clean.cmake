file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_stalls.dir/bench/bench_ablation_stalls.cpp.o"
  "CMakeFiles/bench_ablation_stalls.dir/bench/bench_ablation_stalls.cpp.o.d"
  "bench/bench_ablation_stalls"
  "bench/bench_ablation_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
