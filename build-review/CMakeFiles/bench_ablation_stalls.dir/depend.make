# Empty dependencies file for bench_ablation_stalls.
# This may be replaced when dependencies are built.
