file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_network_r2.dir/bench/bench_table2_network_r2.cpp.o"
  "CMakeFiles/bench_table2_network_r2.dir/bench/bench_table2_network_r2.cpp.o.d"
  "bench/bench_table2_network_r2"
  "bench/bench_table2_network_r2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_network_r2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
