# Empty dependencies file for bench_table2_network_r2.
# This may be replaced when dependencies are built.
