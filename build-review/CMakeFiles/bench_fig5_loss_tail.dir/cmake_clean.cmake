file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_loss_tail.dir/bench/bench_fig5_loss_tail.cpp.o"
  "CMakeFiles/bench_fig5_loss_tail.dir/bench/bench_fig5_loss_tail.cpp.o.d"
  "bench/bench_fig5_loss_tail"
  "bench/bench_fig5_loss_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_loss_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
