# Empty compiler generated dependencies file for bench_fig5_loss_tail.
# This may be replaced when dependencies are built.
