file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_send_variance.dir/bench/bench_fig3_send_variance.cpp.o"
  "CMakeFiles/bench_fig3_send_variance.dir/bench/bench_fig3_send_variance.cpp.o.d"
  "bench/bench_fig3_send_variance"
  "bench/bench_fig3_send_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_send_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
