# Empty dependencies file for bench_fig3_send_variance.
# This may be replaced when dependencies are built.
